package experiments

import (
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/workload"
)

// fastConfig keeps unit tests laptop-quick: heuristic baselines only,
// short solver deadline.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.IncludeILPFrameworks = false
	cfg.SolverDeadline = 500 * time.Millisecond
	return cfg
}

func TestFigure2SeriesShape(t *testing.T) {
	pts, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	// 3 packet sizes x 5 overheads.
	if len(pts) != 15 {
		t.Fatalf("got %d points, want 15", len(pts))
	}
	// Monotone within each packet size.
	bysize := map[int][]Fig2Point{}
	for _, p := range pts {
		bysize[p.PacketBytes] = append(bysize[p.PacketBytes], p)
	}
	for size, series := range bysize {
		for i := 1; i < len(series); i++ {
			if series[i].FCTIncrease < series[i-1].FCTIncrease {
				t.Errorf("size %d: FCT series not monotone", size)
			}
		}
		last := series[len(series)-1]
		if last.FCTIncrease <= 0 || last.GoodputDecrease <= 0 {
			t.Errorf("size %d: 108B overhead has no impact", size)
		}
	}
}

func TestExp1HermesWinsOnOverhead(t *testing.T) {
	rows, err := Exp1(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // 2,4,6,8,10 programs
		t.Fatalf("got %d rows", len(rows))
	}
	// Aggregate A_max per solver across program counts: Hermes must win
	// (or tie) in aggregate; the exact solver must never lose to the
	// heuristic on any row. Individual rows may flip — the greedy is a
	// heuristic — which matches the paper's per-figure variance.
	sums := map[string]int{}
	fails := map[string]int{}
	for _, row := range rows {
		var hermes *SolverResult
		for i := range row.Results {
			if row.Results[i].Solver == "Hermes" {
				hermes = &row.Results[i]
			}
		}
		if hermes == nil {
			t.Fatalf("row %d missing Hermes", row.Programs)
		}
		if hermes.Err != "" {
			t.Fatalf("Hermes failed at %d programs: %s", row.Programs, hermes.Err)
		}
		for _, r := range row.Results {
			if r.Err != "" {
				fails[r.Solver]++
				continue // some baselines may legitimately fail to fit
			}
			sums[r.Solver] += r.AMax
			if r.Solver == "Optimal" && r.AMax > hermes.AMax {
				t.Errorf("%d programs: Optimal AMax %d worse than Hermes %d",
					row.Programs, r.AMax, hermes.AMax)
			}
		}
	}
	// The byte-oblivious MAT-level packers must never beat Hermes in
	// aggregate. Program-unit packers (MS, Sonata, FP) can luck into
	// good program-boundary cuts on the tiny testbed and occasionally
	// tie or edge ahead on single instances (the greedy is near-optimal,
	// not optimal); those are compared with slack.
	for _, solver := range []string{"FFL", "FFLS", "P4All", "SPEED", "MTP"} {
		if fails[solver] > 0 {
			continue // incomplete series cannot be compared fairly
		}
		if sums[solver] < sums["Hermes"] {
			t.Errorf("%s aggregate AMax %d beats Hermes %d", solver, sums[solver], sums["Hermes"])
		}
	}
	for _, solver := range []string{"MS", "Sonata", "FP"} {
		if fails[solver] > 0 {
			continue
		}
		if float64(sums[solver]) < 0.75*float64(sums["Hermes"]) {
			t.Errorf("%s aggregate AMax %d far below Hermes %d", solver, sums[solver], sums["Hermes"])
		}
	}
	// With all ten programs the testbed must actually be stressed into
	// multi-switch deployment (the premise of the experiment).
	last := rows[len(rows)-1]
	for _, r := range last.Results {
		if r.Solver == "Hermes" && r.QOcc < 2 {
			t.Errorf("10 programs occupy %d switches; calibration too loose", r.QOcc)
		}
	}
}

func TestExp1WithILPFrameworks(t *testing.T) {
	if testing.Short() {
		t.Skip("ILP frameworks are slow by design")
	}
	cfg := DefaultConfig()
	cfg.SolverDeadline = 2 * time.Second
	topo, err := testbedTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := buildInstance(workload.RealPrograms()[:2], topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range solverSpecs(cfg) {
		res := runSolver(spec, inst, cfg)
		if res.Err != "" {
			t.Errorf("%s failed: %s", res.Solver, res.Err)
		}
		if res.Capped && res.ExecTime != CappedExecTime {
			t.Errorf("%s capped but exec time %v", res.Solver, res.ExecTime)
		}
	}
}

func TestExp6ResourceAccounting(t *testing.T) {
	res, err := Exp6(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Merging must save the 9 redundant hash stages.
	if res.MergeSavings <= 0 {
		t.Errorf("MergeSavings = %g, want positive", res.MergeSavings)
	}
	// Exp#6's claim: Hermes consumes no switch resources beyond the
	// workload itself.
	if res.HermesExtra > 1e-6 {
		t.Errorf("HermesExtra = %g, want ~0 (paper Exp#6)", res.HermesExtra)
	}
	// And thanks to merging, less than the ground truth.
	if res.HermesUsed >= res.GroundTruth {
		t.Errorf("HermesUsed %g >= ground truth %g", res.HermesUsed, res.GroundTruth)
	}
	if res.SPEEDUsed <= 0 {
		t.Error("SPEED accounting missing")
	}
}

func TestVerifyDeploymentEquivalence(t *testing.T) {
	cfg := fastConfig()
	// A workload mixing several real programs; compile and check
	// distributed == single box over a packet stream.
	progs := workload.RealPrograms()[:6]
	maxHdr, err := VerifyDeployment(cfg, progs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if maxHdr < 0 {
		t.Errorf("negative header bytes %d", maxHdr)
	}
}

func TestExp5ScalesMonotonically(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep is heavy")
	}
	cfg := fastConfig()
	rows, err := Exp5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		for _, r := range row.Results {
			if r.Solver == "Hermes" && r.Err != "" {
				t.Errorf("Hermes failed at %d programs: %s", row.Programs, r.Err)
			}
		}
	}
}

func TestSolverSpecsLineup(t *testing.T) {
	cfg := DefaultConfig()
	specs := solverSpecs(cfg)
	names := map[string]bool{}
	for _, s := range specs {
		names[s.name] = true
	}
	for _, want := range []string{"Hermes", "Optimal", "MS", "Sonata", "SPEED", "MTP", "FP", "P4All", "FFL", "FFLS"} {
		if !names[want] {
			t.Errorf("lineup missing %s", want)
		}
	}
	if len(specs) != 10 {
		t.Errorf("lineup has %d solvers, want 10", len(specs))
	}
	// Heuristic-only config keeps the same comparison names.
	cfg.IncludeILPFrameworks = false
	specs = solverSpecs(cfg)
	if len(specs) != 10 {
		t.Errorf("heuristic lineup has %d solvers, want 10", len(specs))
	}
}
