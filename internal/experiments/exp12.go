package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/deploy/rollout"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/workload"
)

// --- Exp#12: transactional rollout under mid-flight faults ---

// rolloutStageCapacity spreads the workload over several switches so a
// plan change touches a meaningful switch set (full Tofino capacity
// would pack one switch and trivialize the rollout).
const rolloutStageCapacity = 0.05

// rolloutMinUp keeps every generated fault schedule survivable.
const rolloutMinUp = 3

// rolloutPrograms is the workload size, matching Exp#8.
const rolloutPrograms = 6

// RolloutPoint is one topology row of the rollout fault sweep: a fixed
// old→new plan transition executed once cleanly and then once per
// injection point, with a seeded fault-schedule event (and, on every
// third injection, a process interrupt plus journal resume) applied at
// a rotating op boundary.
type RolloutPoint struct {
	// Topology names the substrate; Switches is its size.
	Topology string
	Switches int
	// Ops is the clean rollout's forward op count (the number of
	// distinct injection boundaries); CleanMs its latency.
	Ops     int
	CleanMs float64
	// Injections is the number of faulted executions; Committed,
	// RolledBack and Degraded partition their terminal outcomes, and
	// Resumed counts the interrupted runs that completed via journal
	// resume (their terminal outcome is also counted).
	Injections int
	Committed  int
	RolledBack int
	Degraded   int
	Resumed    int
	// RollbackRate is RolledBack / Injections.
	RollbackRate float64
	// Violations counts invariant breaches: a torn serving state at any
	// op boundary, a non-terminal outcome, or a serving plan that fails
	// Validate/Verify after the rollout settled. Any value above zero is
	// a rollout-engine bug.
	Violations int
	// Retries is the total per-op retry count across all executions.
	Retries int
	// MaxMs and MeanMs aggregate per-execution rollout latency.
	MaxMs  float64
	MeanMs float64
}

// RolloutResult is the full Exp#12 outcome.
type RolloutResult struct {
	Rows []RolloutPoint
}

// rolloutTopology builds the named substrate with rollout capacity.
func rolloutTopology(spec string, seed int64) (*network.Topology, error) {
	sw := network.TofinoSpec()
	sw.StageCapacity = rolloutStageCapacity
	switch spec {
	case "table3:1":
		return network.TableIII(1, sw)
	case "table3:2":
		return network.TableIII(2, sw)
	case "composite:2":
		return network.CompositeWAN(2, sw, seed)
	default:
		return nil, fmt.Errorf("experiments: unknown rollout topology %q", spec)
	}
}

// rolloutInstance builds the fixed old→new transition for one
// topology: deploy the evaluation workload, then drain the busiest
// switch and redeploy around it — the canonical maintenance-driven
// plan change a rollout adopts.
func rolloutInstance(cfg Config, spec string) (*network.Topology, *deploy.Deployment, *deploy.Deployment, error) {
	topo, err := rolloutTopology(spec, cfg.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	progs, err := workload.EvaluationPrograms(rolloutPrograms, cfg.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	plan, err := (placement.Greedy{}).Solve(g, topo, placement.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, nil, nil, err
	}
	old, err := deploy.Compile(plan, analyzer.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	if err := old.Verify(); err != nil {
		return nil, nil, nil, err
	}
	busiest, _ := busiestSwitch(plan)
	next, _, err := deploy.Redeploy(old, nil, placement.ReplanOptions{}, analyzer.Options{}, busiest)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: exp12 %s redeploy: %w", spec, err)
	}
	return topo, old, next, nil
}

// rolloutQuickRetry keeps retries deterministic and fast: attempts are
// bounded and backoff sleeps are a no-op hook, so outcome counts are a
// pure function of the seed.
func rolloutQuickRetry() deploy.RetryPolicy {
	return deploy.RetryPolicy{Attempts: 2, Backoff: time.Microsecond, Sleep: func(time.Duration) {}}
}

// rolloutSweep drives one topology through the full injection matrix.
func rolloutSweep(cfg Config, spec string, injections int) (*RolloutPoint, error) {
	topo, old, next, err := rolloutInstance(cfg, spec)
	if err != nil {
		return nil, err
	}
	pt := &RolloutPoint{Topology: spec, Switches: topo.NumSwitches(), Injections: injections}

	// Clean run: counts the op boundaries and must commit.
	cleanFab := rollout.NewMemFabric(topo.Clone())
	cleanFab.Bootstrap(old, 1)
	clean, err := rollout.New(old, next, rollout.Options{Topo: topo, Fabric: cleanFab, Retry: rolloutQuickRetry()})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	cleanRep, err := clean.Execute()
	if err != nil || cleanRep.Outcome != rollout.OutcomeCommitted {
		return nil, fmt.Errorf("experiments: exp12 %s clean rollout = %s, %v", spec, cleanRep.Outcome, err)
	}
	pt.Ops = cleanRep.Ops
	pt.CleanMs = float64(time.Since(start)) / float64(time.Millisecond)
	if pt.Ops == 0 {
		return nil, fmt.Errorf("experiments: exp12 %s clean rollout issued no ops", spec)
	}

	sched, err := network.GenerateSchedule(topo, network.ScheduleOptions{
		Seed:              cfg.Seed*1000 + int64(len(spec)),
		Events:            injections,
		MinUpProgrammable: rolloutMinUp,
	})
	if err != nil {
		return nil, err
	}
	if len(sched.Events) == 0 {
		return nil, fmt.Errorf("experiments: exp12 %s empty fault schedule", spec)
	}

	var totalMs float64
	for i := 0; i < injections; i++ {
		ev := sched.Events[i%len(sched.Events)]
		b := (i * 7) % pt.Ops
		// Three injection archetypes, rotating: a targeted crash of the
		// boundary op's own dependency (forces the rollback machinery),
		// a process interrupt resumed from the journal, and an ambient
		// seeded-schedule event (which may or may not intersect the
		// rollout's switch set — misses exercise the clean path).
		targeted := i%3 == 0
		interrupt := i%3 == 1

		live := topo.Clone()
		fab := rollout.NewMemFabric(live)
		fab.Bootstrap(old, 1)
		ctx, cancel := context.WithCancel(context.Background())
		boundary := 0
		hook := func(phase string, op rollout.Op, view *rollout.ServingView) {
			if err := view.CheckInstalled(fab); err != nil {
				pt.Violations++
			}
			if boundary == b {
				switch {
				case targeted:
					victim, ok := op.Switch, op.Kind != rollout.OpCommit
					if op.Kind == rollout.OpCommit {
						// Commits target groups; crash a switch the
						// flipped-to plan hosts the group on.
						if hosts := view.HostsOf(op.Group, op.Epoch); len(hosts) > 0 {
							victim, ok = hosts[len(hosts)-1], true
						}
					}
					if ok {
						_ = live.SetSwitchDown(victim)
					}
				case interrupt:
					cancel()
				default:
					_ = ev.Apply(live)
				}
			}
			boundary++
		}
		r, err := rollout.New(old, next, rollout.Options{
			Topo: live, Ctx: ctx, Fabric: fab, Retry: rolloutQuickRetry(), Hook: hook,
		})
		if err != nil {
			cancel()
			return nil, err
		}
		start := time.Now()
		rep, xerr := r.Execute()
		if interrupt && errors.Is(xerr, rollout.ErrInterrupted) {
			// Crash-resume through the journal's durable text form.
			j, perr := rollout.ParseJournal(r.Journal().Format())
			if perr != nil {
				cancel()
				return nil, fmt.Errorf("experiments: exp12 %s journal round-trip: %w", spec, perr)
			}
			r2, nerr := rollout.New(old, next, rollout.Options{
				Topo: live, Fabric: fab, Journal: j, Retry: rolloutQuickRetry(),
			})
			if nerr != nil {
				cancel()
				return nil, nerr
			}
			pt.Retries += rep.Retries
			rep, xerr = r2.Execute()
			pt.Resumed++
			r = r2
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		cancel()
		totalMs += ms
		if ms > pt.MaxMs {
			pt.MaxMs = ms
		}
		pt.Retries += rep.Retries

		switch rep.Outcome {
		case rollout.OutcomeCommitted:
			pt.Committed++
		case rollout.OutcomeRolledBack:
			pt.RolledBack++
		case rollout.OutcomeDegraded:
			pt.Degraded++
		default:
			// A resumed rollout must terminate; a lone interrupt without
			// resume cannot happen here (only i%3==1 runs interrupt).
			pt.Violations++
			continue
		}
		// The serving state must be un-torn at the terminal...
		if err := r.View().CheckInstalled(fab); err != nil {
			pt.Violations++
		}
		// ...and the plan now serving must still be Validate+Verify
		// green (for degraded outcomes programs split across both plans,
		// each individually green; the per-boundary checks above already
		// proved no program is torn).
		serving := old
		if rep.Outcome == rollout.OutcomeCommitted {
			serving = next
		}
		if rep.Outcome != rollout.OutcomeDegraded {
			if err := serving.Plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
				pt.Violations++
			}
			if err := serving.Verify(); err != nil {
				pt.Violations++
			}
		}
		_ = xerr // outcome classification above subsumes the error
	}
	pt.MeanMs = totalMs / float64(injections)
	pt.RollbackRate = float64(pt.RolledBack) / float64(injections)
	return pt, nil
}

// Exp12 is the rollout fault study: a fixed old→new plan transition on
// each substrate, executed once per injection point with a seeded
// fault-schedule event applied at a rotating op boundary (every third
// injection also interrupts the process and resumes from the journal).
// Topologies evaluate concurrently under cfg.Workers; rows come back
// in topology order.
func Exp12(cfg Config, topologies []string, injections int) (*RolloutResult, error) {
	if len(topologies) == 0 {
		topologies = []string{"table3:1", "table3:2", "composite:2"}
	}
	if injections <= 0 {
		injections = 33
	}
	out := &RolloutResult{Rows: make([]RolloutPoint, len(topologies))}
	errs := make([]error, len(topologies))
	runParallel(len(topologies), cfg.workers(), func(i int) {
		pt, err := rolloutSweep(cfg, topologies[i], injections)
		if err != nil {
			errs[i] = err
			return
		}
		out.Rows[i] = *pt
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}
