package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/baseline"
	"github.com/hermes-net/hermes/internal/dataplane"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/e2esim"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
	"github.com/hermes-net/hermes/internal/workload"
)

// --- Figure 2: motivation sweep ---

// Fig2Point is one point of Figure 2.
type Fig2Point struct {
	PacketBytes     int
	OverheadBytes   int
	FCTIncrease     float64
	GoodputDecrease float64
}

// Figure2 sweeps the per-packet overhead for the paper's three packet
// sizes. The (size, overhead) grid evaluates concurrently; the
// returned points keep the serial order (sizes outer, overheads
// inner).
func Figure2() ([]Fig2Point, error) {
	sizes := e2esim.Figure2PacketSizes()
	overheads := e2esim.Figure2Overheads()
	out := make([]Fig2Point, len(sizes)*len(overheads))
	errs := make([]error, len(out))
	runParallel(len(out), runtime.GOMAXPROCS(0), func(i int) {
		size := sizes[i/len(overheads)]
		h := overheads[i%len(overheads)]
		imp, err := e2esim.DefaultDCN(size).ImpactOf(h)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: figure 2: %w", err)
			return
		}
		out[i] = Fig2Point{
			PacketBytes:     size,
			OverheadBytes:   h,
			FCTIncrease:     imp.FCTIncrease,
			GoodputDecrease: imp.GoodputDecrease,
		}
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// runGrid evaluates the (row × solver) cell grid concurrently and
// returns per-row result slices in row order. Cells are claimed
// work-stealing style so one slow ILP cell does not serialize a whole
// row behind it. When cells run concurrently each solver runs with
// Workers=1 — the outer level already saturates the machine, and
// nesting would multiply goroutines and starve the wall-clock-budgeted
// solvers; with a single worker the full budget flows to the solver
// instead.
func runGrid(insts []*instance, specs []solverSpec, cfg Config) [][]SolverResult {
	cellCfg := cfg
	if cfg.workers() > 1 {
		cellCfg.Workers = 1
	}
	results := make([][]SolverResult, len(insts))
	for i := range results {
		results[i] = make([]SolverResult, len(specs))
	}
	// Claim deadline-capped (ILP-backed) cells first: they are anytime
	// searches pinned to a wall-clock cap, so overlapping them costs
	// nothing and hides their waits behind the heuristic cells.
	order := make([]int, len(insts)*len(specs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return specs[order[a]%len(specs)].ilpBacked && !specs[order[b]%len(specs)].ilpBacked
	})
	runParallel(len(order), cfg.workers(), func(c int) {
		i, j := order[c]/len(specs), order[c]%len(specs)
		results[i][j] = runSolver(specs[j], insts[i], cellCfg)
	})
	return results
}

// --- Exp#1: testbed (Figure 5) ---

// Exp1Row is one x-axis point of Figure 5: all solvers at a program
// count.
type Exp1Row struct {
	Programs int
	Results  []SolverResult
}

// testbedTopology builds the paper's 3-Tofino linear testbed with the
// calibrated stage capacity.
func testbedTopology(cfg Config) (*network.Topology, error) {
	spec := network.TestbedSpec()
	spec.StageCapacity = cfg.TestbedStageCapacity
	return network.Linear(3, spec)
}

// Exp1 deploys 2..10 real programs on the testbed with every solver.
// Instance analysis and the (program count × solver) cells run
// concurrently under cfg.Workers; rows come back in program-count
// order.
func Exp1(cfg Config) ([]Exp1Row, error) {
	topo, err := testbedTopology(cfg)
	if err != nil {
		return nil, err
	}
	real := workload.RealPrograms()
	var counts []int
	for n := 2; n <= len(real); n += 2 {
		counts = append(counts, n)
	}
	insts := make([]*instance, len(counts))
	errs := make([]error, len(counts))
	runParallel(len(counts), cfg.workers(), func(i int) {
		insts[i], errs[i] = buildInstance(real[:counts[i]], topo)
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	results := runGrid(insts, solverSpecs(cfg), cfg)
	rows := make([]Exp1Row, len(counts))
	for i, n := range counts {
		rows[i] = Exp1Row{Programs: n, Results: results[i]}
	}
	return rows, nil
}

// --- Exp#2/#3/#4: large-scale simulation (Figures 6, 7, 8) ---

// TopoRow is one topology's results (Exp#2 overhead, Exp#3 time, Exp#4
// end-to-end impact all read off the same solver runs).
type TopoRow struct {
	Topology int
	Nodes    int
	Edges    int
	Results  []SolverResult
}

// Exp2 deploys `programs` concurrent programs (the paper uses 50) on
// each of the ten Table III topologies. Topology construction and the
// (topology × solver) cells run concurrently under cfg.Workers; rows
// come back in topology order.
func Exp2(cfg Config, programs int) ([]TopoRow, error) {
	progs, err := workload.EvaluationPrograms(programs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	nRows := network.NumTableIII()
	rows := make([]TopoRow, nRows)
	insts := make([]*instance, nRows)
	errs := make([]error, nRows)
	runParallel(nRows, cfg.workers(), func(i int) {
		topoIdx := i + 1
		topo, err := network.TableIII(topoIdx, network.TofinoSpec())
		if err != nil {
			errs[i] = err
			return
		}
		inst, err := buildInstance(progs, topo)
		if err != nil {
			errs[i] = err
			return
		}
		nodes, edges, err := network.TableIIISize(topoIdx)
		if err != nil {
			errs[i] = err
			return
		}
		insts[i] = inst
		rows[i] = TopoRow{Topology: topoIdx, Nodes: nodes, Edges: edges}
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	results := runGrid(insts, solverSpecs(cfg), cfg)
	for i := range rows {
		rows[i].Results = results[i]
	}
	return rows, nil
}

// --- Exp#5: scalability (Figure 9) ---

// ScaleRow is one program-count point on topology 10.
type ScaleRow struct {
	Programs int
	Results  []SolverResult
}

// Exp5 varies the number of concurrent programs from 10 to 50 on the
// tenth topology. Workload analysis and the (program count × solver)
// cells run concurrently under cfg.Workers; rows come back in
// program-count order.
func Exp5(cfg Config) ([]ScaleRow, error) {
	topo, err := network.TableIII(10, network.TofinoSpec())
	if err != nil {
		return nil, err
	}
	var counts []int
	for n := 10; n <= 50; n += 10 {
		counts = append(counts, n)
	}
	insts := make([]*instance, len(counts))
	errs := make([]error, len(counts))
	runParallel(len(counts), cfg.workers(), func(i int) {
		progs, err := workload.EvaluationPrograms(counts[i], cfg.Seed)
		if err != nil {
			errs[i] = err
			return
		}
		insts[i], errs[i] = buildInstance(progs, topo)
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	results := runGrid(insts, solverSpecs(cfg), cfg)
	rows := make([]ScaleRow, len(counts))
	for i, n := range counts {
		rows[i] = ScaleRow{Programs: n, Results: results[i]}
	}
	return rows, nil
}

// --- Exp#6: switch resource consumption ---

// Exp6Result reports resource accounting for the SDM scenario.
type Exp6Result struct {
	// GroundTruth is the summed per-sketch resource requirement when
	// each sketch is deployed alone (no coordination active).
	GroundTruth float64
	// HermesUsed is the total resources consumed by the Hermes
	// deployment of all sketches at once.
	HermesUsed float64
	// SPEEDUsed is the same for SPEED.
	SPEEDUsed float64
	// MergeSavings is the resource amount merging eliminated.
	MergeSavings float64
	// HermesExtra is HermesUsed minus the merged workload's inherent
	// requirement — the coordination overhead Exp#6 claims is zero.
	HermesExtra float64
}

// Exp6 deploys ten sketches and accounts for switch resources. The
// sketch workload is denser than the Exp#1 mix, so Exp#6 uses its own
// testbed calibration (0.3 stage capacity) regardless of cfg.
func Exp6(cfg Config) (*Exp6Result, error) {
	if cfg.TestbedStageCapacity < 0.3 {
		cfg.TestbedStageCapacity = 0.3
	}
	sketches, err := workload.SketchSet(10, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rm := program.DefaultResourceModel

	// Ground truth: each sketch alone.
	ground := 0.0
	for _, s := range sketches {
		g, err := analyzer.Analyze([]*program.Program{s}, analyzer.Options{})
		if err != nil {
			return nil, err
		}
		ground += g.TotalRequirement(rm)
	}

	merged, err := analyzer.Analyze(sketches, analyzer.Options{})
	if err != nil {
		return nil, err
	}
	inherent := merged.TotalRequirement(rm)

	topo, err := testbedTopology(cfg)
	if err != nil {
		return nil, err
	}
	planUsed := func(p *placement.Plan) float64 {
		total := 0.0
		for _, sp := range p.Assignments {
			total += sp.Total()
		}
		return total
	}
	hermesPlan, err := (placement.Greedy{}).Solve(merged, topo, placement.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: exp6 hermes: %w", err)
	}
	speedPlan, err := runSpeedForExp6(merged, topo)
	if err != nil {
		return nil, fmt.Errorf("experiments: exp6 speed: %w", err)
	}
	return &Exp6Result{
		GroundTruth:  ground,
		HermesUsed:   planUsed(hermesPlan),
		SPEEDUsed:    planUsed(speedPlan),
		MergeSavings: ground - inherent,
		HermesExtra:  planUsed(hermesPlan) - inherent,
	}, nil
}

func runSpeedForExp6(merged *tdg.Graph, topo *network.Topology) (*placement.Plan, error) {
	return (baseline.SPEED{}).Solve(merged, topo, placement.Options{})
}

// runEquivalence drives random packets through the deployment and the
// single-box reference.
func runEquivalence(dep *deploy.Deployment, packets int, seed int64) (int, error) {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]*dataplane.Packet, packets)
	for i := range pkts {
		pkts[i] = &dataplane.Packet{Headers: map[string]uint64{
			fields.IPv4Src:   uint64(rng.Intn(64)),
			fields.IPv4Dst:   uint64(rng.Intn(64)),
			fields.IPv4Proto: 6,
			fields.IPv4TTL:   64,
			fields.IPv4DSCP:  uint64(rng.Intn(8)),
			fields.TCPSrc:    uint64(1024 + rng.Intn(1024)),
			fields.TCPDst:    uint64(rng.Intn(1024)),
			fields.UDPSrc:    uint64(rng.Intn(1024)),
			fields.UDPDst:    uint64(rng.Intn(1024)),
			fields.EthSrc:    uint64(rng.Intn(1 << 20)),
			fields.EthDst:    uint64(rng.Intn(1 << 20)),
			fields.EthType:   0x0800,
			fields.VlanID:    uint64(rng.Intn(16)),
		}}
	}
	return dataplane.EquivalentRuns(dep, pkts)
}

// --- verification: distributed execution equals single-box ---

// VerifyDeployment compiles the Hermes plan for the given programs on
// the testbed and checks packet-level equivalence between the
// distributed deployment and single-box execution; it returns the
// measured max coordination header bytes.
func VerifyDeployment(cfg Config, progs []*program.Program, packets int) (int, error) {
	topo, err := testbedTopology(cfg)
	if err != nil {
		return 0, err
	}
	merged, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		return 0, err
	}
	plan, err := (placement.Greedy{}).Solve(merged, topo, placement.Options{})
	if err != nil {
		return 0, err
	}
	dep, err := deploy.Compile(plan, analyzer.Options{})
	if err != nil {
		return 0, err
	}
	if err := dep.Verify(); err != nil {
		return 0, err
	}
	return runEquivalence(dep, packets, cfg.Seed)
}
