package experiments

import (
	"sync"
	"sync/atomic"
)

// runParallel runs fn(i) for every i in [0, n) across at most workers
// goroutines, claiming items from an atomic counter so uneven cell
// costs balance (ILP cells run orders of magnitude longer than
// heuristic ones). fn must write results into i-indexed slots, which
// keeps row order deterministic regardless of completion order.
// workers <= 1 (or n <= 1) degrades to a plain loop.
func runParallel(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// firstError returns the first non-nil error in errs, matching the
// error a serial loop over the same rows would have surfaced.
func firstError(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
