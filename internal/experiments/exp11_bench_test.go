package experiments

import (
	"testing"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/placement/shard"
	"github.com/hermes-net/hermes/internal/workload"
)

// BenchmarkExp11Regional isolates the regional replan at the Exp#11
// headline cell (composite:30, busiest-switch drain) so the healing
// path can be profiled without the cold solves and equivalence checks
// around it in the acceptance test.
func BenchmarkExp11Regional(b *testing.B) {
	cfg := fastConfig()
	topo, err := network.CompositeWAN(30, network.TofinoSpec(), cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	progs, err := workload.SyntheticSet(50, workload.PaperSyntheticSpec(), cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	merged, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		b.Fatal(err)
	}
	part, err := network.PartitionRegions(topo, 8, cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	solver := shard.ShardedGreedy{Shards: 8, Seed: cfg.Seed, Partition: part}
	opts := placement.Options{Workers: cfg.Workers}
	base, err := solver.Solve(merged, topo, opts)
	if err != nil {
		b.Fatal(err)
	}
	drain, _ := busiestSwitch(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := placement.ReplanWithOptions(base, solver, placement.ReplanOptions{
			Options:      opts,
			Partition:    part,
			QualityRatio: RegionReplanQualityRatio,
		}, drain)
		if err != nil {
			b.Fatal(err)
		}
	}
}
