package experiments

import "testing"

// TestExp11RegionalReplanAcceptance is the ISSUE 9 acceptance gate on
// the smoke sweep: every cell heals through the regional path (zero
// full-solve fallbacks), holds the quality bound, and the incremental
// equivalence verdict agrees with the full checker; the headline
// composite:30 drain must heal at least 10x faster than the sharded
// cold re-solve.
func TestExp11RegionalReplanAcceptance(t *testing.T) {
	pts, err := Exp11(fastConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("smoke sweep has %d cells, want 2", len(pts))
	}
	var headline *RegionReplanPoint
	for i := range pts {
		pt := &pts[i]
		t.Logf("%s: cold %.2fms regional %.2fms (dirty %.3f regions %.3f exchange %.3f gates %.3f) touched %d widened %d exMoves %d displaced %d",
			pt.Topology, pt.ColdMs, pt.RegionalMs, pt.DirtyMs, pt.RegionsMs, pt.ExchangeMs, pt.GatesMs,
			pt.RegionsTouched, pt.RegionsWidened, pt.ExchangeMoves, pt.DisplacedMATs)
		if pt.FellBack {
			t.Errorf("%s: regional replan fell back to a full solve", pt.Topology)
		}
		if pt.RegionsTouched == 0 {
			t.Errorf("%s: no regions touched", pt.Topology)
		}
		if pt.DisplacedMATs == 0 || pt.MovedRegional == 0 {
			t.Errorf("%s: drain displaced %d MATs, regional moved %d — no churn exercised",
				pt.Topology, pt.DisplacedMATs, pt.MovedRegional)
		}
		// Quality: within the ratio of the cold re-solve, except when the
		// pre-drain seed was already worse (the warm-seed bound — an
		// incremental repair cannot out-solve its seed's global structure).
		if pt.AMaxRatio > RegionReplanQualityRatio && pt.RegionalAMax > pt.SeedAMax {
			t.Errorf("%s: regional A_max %dB is %.2fx the %dB cold re-solve (seed %dB)",
				pt.Topology, pt.RegionalAMax, pt.AMaxRatio, pt.ColdAMax, pt.SeedAMax)
		}
		if !pt.EquivAgree {
			t.Errorf("%s: incremental and full equivalence verdicts diverge", pt.Topology)
		}
		if pt.Topology == "composite:30" {
			headline = pt
		}
	}
	if headline == nil {
		t.Fatal("smoke sweep missing the composite:30 headline cell")
	}
	// The tentpole claim: busiest-switch churn on the 2k-switch WAN
	// heals regionally >=10x faster than re-solving the shard sweep
	// cold. Both sides are min-of-reps deterministic replans measured
	// in the same process, so the ratio is stable well above the bound
	// (~15-18x observed). The race detector's per-access
	// instrumentation compresses the ratio (~9x observed — the cold
	// solve's bulk allocations amortize instrumentation better than
	// the regional path's pointer-chasing), so the floor drops to 5x
	// there; the un-instrumented bound is the one `make check` also
	// enforces via regionreplan-smoke.
	floor := 10.0
	if raceDetectorEnabled {
		floor = 5.0
	}
	if headline.Speedup < floor {
		t.Errorf("composite:30 regional replan speedup %.1fx < %.0fx (cold %.2fms, regional %.2fms)",
			headline.Speedup, floor, headline.ColdMs, headline.RegionalMs)
	}
}
