package experiments

import (
	"fmt"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/lint"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/supervisor"
	"github.com/hermes-net/hermes/internal/workload"
)

// --- Exp#8: survivability under injected faults ---

// surviveStageCapacity spreads the six-program workload over several
// switches of Table III topology 1 so fault events regularly strand
// MATs and cut routes (full Tofino capacity would pack one switch).
const surviveStageCapacity = 0.05

// surviveMinUp keeps every schedule prefix survivable: even fully
// degraded, one program fits on three programmable switches.
const surviveMinUp = 3

// survivePrograms is the workload size; larger counts stop fitting the
// reduced-capacity topologies outright (see the chaos test).
const survivePrograms = 6

// SurvivalPoint is one fault-rate row of the survivability sweep: a
// fresh supervisor driven through a seeded schedule of the given
// length, with the full oracle stack run at every quiescent point.
type SurvivalPoint struct {
	// Events is the requested fault-injection count; ScheduleEvents is
	// the realized schedule length including the generated heals.
	Events         int
	ScheduleEvents int
	// Polls is the total supervision ticks spent, including the
	// quiescence polls after each event.
	Polls int
	// Replans counts redeploys; IncrementalReplans of them repaired the
	// standing plan and FullReplans solved from scratch.
	Replans            int
	IncrementalReplans int
	FullReplans        int
	// ShedEvents and RestoreEvents count graceful-degradation activity;
	// FinalShed is how many programs remained shed after the schedule
	// (the schedules end fully healed, so the target is zero).
	ShedEvents    int
	RestoreEvents int
	FinalShed     int
	// Violations counts quiescent states where Plan.Validate, the lint
	// oracle, or deploy.Verify rejected the live deployment. Any value
	// above zero is a supervisor bug.
	Violations int
	// MaxRecoveryMs and MeanRecoveryMs aggregate the wall-clock time of
	// the polls that replanned, shed, or restored.
	MaxRecoveryMs  float64
	MeanRecoveryMs float64
	// BaseAMax is Eq. 1 of the pre-fault plan; MaxAMax is the worst
	// quiescent A_max over the schedule, and AMaxInflation their ratio —
	// the coordination-overhead price of surviving the faults.
	BaseAMax      int
	MaxAMax       int
	AMaxInflation float64
}

// SingleCrashResult measures the headline recovery event: crashing the
// busiest switch of the deployed plan.
type SingleCrashResult struct {
	Crashed       network.SwitchID
	DisplacedMATs int
	// UsedRepair is true when recovery went through the incremental
	// repair path rather than a cold solve.
	UsedRepair bool
	RecoveryMs float64
	AMaxBefore int
	AMaxAfter  int
}

// SurvivalResult is the full Exp#8 outcome.
type SurvivalResult struct {
	Single SingleCrashResult
	Rows   []SurvivalPoint
}

// surviveInstance builds the shared fixture: a supervised deployment of
// the evaluation workload on Table III topology 1 with tightened stage
// capacity, under a 2-of-2 confirmation monitor.
func surviveInstance(cfg Config) (*network.Topology, *supervisor.Supervisor, error) {
	spec := network.TofinoSpec()
	spec.StageCapacity = surviveStageCapacity
	topo, err := network.TableIII(1, spec)
	if err != nil {
		return nil, nil, err
	}
	progs, err := workload.EvaluationPrograms(survivePrograms, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	sup, err := supervisor.New(progs, topo, supervisor.Options{
		Monitor: supervisor.MonitorOptions{
			Window: 2, FailThreshold: 2, RecoverThreshold: 1,
			BackoffMax: 2, Seed: cfg.Seed,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return topo, sup, nil
}

// quiesceSupervisor polls until the monitor's confirmed view matches
// the raw fault overlay and the plan is consistent with it. It returns
// the polls spent and the recovery durations observed.
func quiesceSupervisor(topo *network.Topology, sup *supervisor.Supervisor) (int, []time.Duration, error) {
	var recov []time.Duration
	for i := 0; i < 80; i++ {
		res, err := sup.Poll()
		if err != nil {
			return i + 1, recov, err
		}
		if res.RecoveryTime > 0 {
			recov = append(recov, res.RecoveryTime)
		}
		settled := len(res.Down) == 0 && len(res.Up) == 0 &&
			len(res.Shed) == 0 && len(res.Restored) == 0
		if settled && monitorConverged(topo, sup.Monitor()) && !sup.PlanBroken() {
			return i + 1, recov, nil
		}
	}
	return 80, recov, fmt.Errorf("experiments: supervisor failed to quiesce")
}

// monitorConverged reports whether the confirmed-down set equals the
// raw fault overlay.
func monitorConverged(topo *network.Topology, m *supervisor.Monitor) bool {
	raw := map[network.SwitchID]bool{}
	for _, sw := range topo.Switches() {
		if topo.SwitchIsDown(sw.ID) {
			raw[sw.ID] = true
		}
	}
	conf := m.ConfirmedDown()
	if len(conf) != len(raw) {
		return false
	}
	for _, id := range conf {
		if !raw[id] {
			return false
		}
	}
	return true
}

// checkDeployment runs the full oracle stack over the live deployment.
func checkDeployment(sup *supervisor.Supervisor) error {
	dep := sup.Deployment()
	rm := program.DefaultResourceModel
	if err := dep.Plan.Validate(rm, 0, 0); err != nil {
		return err
	}
	if err := lint.CheckPlanOracle(dep.Plan, rm, 0, 0, analyzer.Options{}); err != nil {
		return err
	}
	return dep.Verify()
}

// survivalPoint drives one fresh supervisor through one seeded
// schedule of the requested length.
func survivalPoint(cfg Config, events int) (*SurvivalPoint, error) {
	topo, sup, err := surviveInstance(cfg)
	if err != nil {
		return nil, err
	}
	sched, err := network.GenerateSchedule(topo, network.ScheduleOptions{
		Seed:              cfg.Seed*1000 + int64(events),
		Events:            events,
		MinUpProgrammable: surviveMinUp,
	})
	if err != nil {
		return nil, err
	}
	pt := &SurvivalPoint{
		Events:         events,
		ScheduleEvents: len(sched.Events),
		BaseAMax:       sup.Deployment().Plan.AMax(),
	}
	pt.MaxAMax = pt.BaseAMax
	var recov []time.Duration
	for _, ev := range sched.Events {
		if err := ev.Apply(topo); err != nil {
			return nil, err
		}
		polls, r, err := quiesceSupervisor(topo, sup)
		pt.Polls += polls
		recov = append(recov, r...)
		if err != nil {
			return nil, fmt.Errorf("experiments: exp8 at %d events: %w", events, err)
		}
		if err := checkDeployment(sup); err != nil {
			pt.Violations++
		}
		if a := sup.Deployment().Plan.AMax(); a > pt.MaxAMax {
			pt.MaxAMax = a
		}
	}
	st := sup.Stats()
	pt.Replans = st.Replans
	pt.IncrementalReplans = st.IncrementalReplans
	pt.FullReplans = st.FullReplans
	pt.ShedEvents = st.ShedPrograms
	pt.RestoreEvents = st.RestoredPrograms
	pt.FinalShed = len(sup.Report().Shed)
	var sum time.Duration
	for _, d := range recov {
		if ms := float64(d) / float64(time.Millisecond); ms > pt.MaxRecoveryMs {
			pt.MaxRecoveryMs = ms
		}
		sum += d
	}
	if len(recov) > 0 {
		pt.MeanRecoveryMs = float64(sum) / float64(len(recov)) / float64(time.Millisecond)
	}
	if pt.BaseAMax > 0 {
		pt.AMaxInflation = float64(pt.MaxAMax) / float64(pt.BaseAMax)
	} else if pt.MaxAMax == 0 {
		pt.AMaxInflation = 1
	}
	return pt, nil
}

// singleCrash crashes the busiest switch of a fresh deployment and
// measures the recovery.
func singleCrash(cfg Config) (*SingleCrashResult, error) {
	topo, sup, err := surviveInstance(cfg)
	if err != nil {
		return nil, err
	}
	crashed, displaced := busiestSwitch(sup.Deployment().Plan)
	before := sup.Deployment().Plan.AMax()
	if err := topo.SetSwitchDown(crashed); err != nil {
		return nil, err
	}
	out := &SingleCrashResult{Crashed: crashed, DisplacedMATs: displaced, AMaxBefore: before}
	for i := 0; i < 80 && sup.PlanBroken(); i++ {
		res, err := sup.Poll()
		if err != nil {
			return nil, err
		}
		if res.Replanned {
			out.UsedRepair = res.UsedRepair
			out.RecoveryMs += float64(res.RecoveryTime) / float64(time.Millisecond)
		}
	}
	if sup.PlanBroken() {
		return nil, fmt.Errorf("experiments: exp8 single crash never recovered")
	}
	if err := checkDeployment(sup); err != nil {
		return nil, fmt.Errorf("experiments: exp8 post-crash deployment invalid: %w", err)
	}
	out.AMaxAfter = sup.Deployment().Plan.AMax()
	return out, nil
}

// Exp8 is the survivability study: the supervised deployment on Table
// III topology 1 driven through seeded fault schedules of increasing
// length, plus the single-crash headline recovery. Rates evaluate
// concurrently under cfg.Workers; rows come back in rate order.
func Exp8(cfg Config, rates []int) (*SurvivalResult, error) {
	if len(rates) == 0 {
		rates = []int{10, 20, 40}
	}
	out := &SurvivalResult{Rows: make([]SurvivalPoint, len(rates))}
	errs := make([]error, len(rates)+1)
	runParallel(len(rates)+1, cfg.workers(), func(i int) {
		if i == len(rates) {
			sc, err := singleCrash(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			out.Single = *sc
			return
		}
		pt, err := survivalPoint(cfg, rates[i])
		if err != nil {
			errs[i] = err
			return
		}
		out.Rows[i] = *pt
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}
