package experiments

import (
	"fmt"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/equiv"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/placement/shard"
	"github.com/hermes-net/hermes/internal/workload"
)

// RegionReplanQualityRatio is Exp#11's acceptance bound: the regional
// replan's A_max may exceed the sharded cold re-solve's by at most this
// factor (unless the pre-drain seed was already worse — an incremental
// repair cannot out-solve its warm seed's global structure).
const RegionReplanQualityRatio = 1.2

// RegionReplanPoint is one Exp#11 cell: the busiest-switch drain on a
// composite WAN healed by the region-local replan versus the sharded
// cold re-solve, off the same pre-drain sharded plan.
type RegionReplanPoint struct {
	// Topology names the substrate ("composite:30", ...).
	Topology     string
	Switches     int
	Programmable int
	Programs     int
	MATs         int
	Shards       int
	// Drained is the pre-drain plan's busiest switch; DisplacedMATs is
	// how many MATs the drain stranded.
	Drained       network.SwitchID
	DisplacedMATs int
	// ColdMs/RegionalMs are the full sharded re-solve and region-local
	// replan latencies (min of reps); Speedup is their ratio.
	ColdMs     float64
	RegionalMs float64
	Speedup    float64
	// SeedAMax is the pre-drain plan's Eq. 1; ColdAMax/RegionalAMax are
	// the two replans'; AMaxRatio is RegionalAMax/ColdAMax.
	SeedAMax     int
	ColdAMax     int
	RegionalAMax int
	AMaxRatio    float64
	// Regional-path telemetry (from the replan report).
	RegionsTouched int
	RegionsWidened int
	ExchangeRounds int
	ExchangeMoves  int
	// MovedCold/MovedRegional count MATs that changed switch versus the
	// pre-drain plan under each strategy (the migration cost).
	MovedCold     int
	MovedRegional int
	// FellBack marks cells whose regional replan abandoned the repair
	// and ran the full solver — the acceptance sweep requires zero.
	FellBack bool
	// DirtyMs/RegionsMs/ExchangeMs/GatesMs split RegionalMs into the
	// replan's phases.
	DirtyMs    float64
	RegionsMs  float64
	ExchangeMs float64
	GatesMs    float64
	// EquivAgree reports whether the incremental equivalence re-check
	// keyed off the replan's moved set reached the same verdict as the
	// full checker on the repaired plan; EquivMs is the incremental
	// re-check's cost.
	EquivAgree bool
	EquivMs    float64
}

// exp11Case is one sweep size.
type exp11Case struct {
	topoSpec string
	regions  int // CompositeWAN regions
	programs int
	shards   int
}

// exp11Cases returns the sweep. Smoke keeps both replans in the tens
// of milliseconds; full adds the larger composite point.
func exp11Cases(full bool) []exp11Case {
	cases := []exp11Case{
		{topoSpec: "composite:10", regions: 10, programs: 30, shards: 4},
		{topoSpec: "composite:30", regions: 30, programs: 50, shards: 8},
	}
	if full {
		cases = append(cases, exp11Case{topoSpec: "composite:60", regions: 60, programs: 100, shards: 16})
	}
	return cases
}

// Exp11 measures churn-at-scale healing (EXPERIMENTS.md Exp#11): on
// each composite WAN it solves cold with the sharded solver, drains the
// busiest switch of that plan, and replans twice off the same pre-drain
// plan — a full sharded re-solve and the region-local incremental path
// over the solve-time partition. full enables the larger sweep point.
func Exp11(cfg Config, full bool) ([]RegionReplanPoint, error) {
	var out []RegionReplanPoint
	for _, c := range exp11Cases(full) {
		p, err := exp11Point(cfg, c)
		if err != nil {
			return nil, fmt.Errorf("experiments: exp11 %s: %w", c.topoSpec, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func exp11Point(cfg Config, c exp11Case) (RegionReplanPoint, error) {
	topo, err := network.CompositeWAN(c.regions, network.TofinoSpec(), cfg.Seed)
	if err != nil {
		return RegionReplanPoint{}, err
	}
	progs, err := workload.SyntheticSet(c.programs, workload.PaperSyntheticSpec(), cfg.Seed)
	if err != nil {
		return RegionReplanPoint{}, err
	}
	merged, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		return RegionReplanPoint{}, err
	}
	part, err := network.PartitionRegions(topo, c.shards, cfg.Seed)
	if err != nil {
		return RegionReplanPoint{}, err
	}
	// The solver reuses the standing partition, keeping solve-time and
	// replan-time regions aligned — the operator setup DESIGN.md §14
	// describes.
	solver := shard.ShardedGreedy{Shards: c.shards, Seed: cfg.Seed, Partition: part}
	opts := placement.Options{Workers: cfg.Workers}
	base, err := solver.Solve(merged, topo, opts)
	if err != nil {
		return RegionReplanPoint{}, fmt.Errorf("base solve: %w", err)
	}
	drain, displaced := busiestSwitch(base)

	pt := RegionReplanPoint{
		Topology:      c.topoSpec,
		Switches:      topo.NumSwitches(),
		Programmable:  len(topo.ProgrammableSwitches()),
		Programs:      c.programs,
		MATs:          merged.NumNodes(),
		Shards:        c.shards,
		Drained:       drain,
		DisplacedMATs: displaced,
		SeedAMax:      base.AMax(),
	}

	// Both replans are deterministic; min-of-reps is the noise-robust
	// point estimate for latencies in the millisecond range. The
	// regional side finishes in ~2ms, where a single GC pause reads as
	// a 25% regression, so the rep count errs high — the whole sweep
	// still costs well under a second.
	const reps = 7
	var cold *placement.Plan
	for i := 0; i < reps; i++ {
		p, r, err := placement.ReplanWithOptions(base, solver,
			placement.ReplanOptions{Options: opts, Mode: placement.ReplanFull}, drain)
		if err != nil {
			return pt, fmt.Errorf("cold replan: %w", err)
		}
		if elapsed := ms(r.TotalTime); i == 0 || elapsed < pt.ColdMs {
			pt.ColdMs = elapsed
			cold = p
			pt.MovedCold = r.MovedMATs
		}
	}
	pt.ColdAMax = cold.AMax()

	var regional *placement.Plan
	var rep *placement.ReplanReport
	for i := 0; i < reps; i++ {
		p, r, err := placement.ReplanWithOptions(base, solver, placement.ReplanOptions{
			Options:      opts,
			Partition:    part,
			QualityRatio: RegionReplanQualityRatio,
		}, drain)
		if err != nil {
			return pt, fmt.Errorf("regional replan: %w", err)
		}
		if elapsed := ms(r.TotalTime); i == 0 || elapsed < pt.RegionalMs {
			pt.RegionalMs = elapsed
			regional, rep = p, r
		}
	}
	pt.RegionalAMax = regional.AMax()
	pt.MovedRegional = rep.MovedMATs
	pt.FellBack = !rep.UsedRepair || !rep.UsedRegional
	pt.RegionsTouched = len(rep.RegionsTouched)
	pt.RegionsWidened = rep.RegionsWidened
	pt.ExchangeRounds = rep.ExchangeRounds
	pt.ExchangeMoves = rep.ExchangeMoves
	pt.DirtyMs = ms(rep.Phases.Dirty)
	pt.RegionsMs = ms(rep.Phases.Regions)
	pt.ExchangeMs = ms(rep.Phases.Exchange)
	pt.GatesMs = ms(rep.Phases.Gates)
	if pt.RegionalMs > 0 {
		pt.Speedup = pt.ColdMs / pt.RegionalMs
	}
	if pt.ColdAMax > 0 {
		pt.AMaxRatio = float64(pt.RegionalAMax) / float64(pt.ColdAMax)
	} else if pt.RegionalAMax == 0 {
		pt.AMaxRatio = 1
	}

	// Verdict differential: re-prove only the moved components with the
	// incremental checker and require agreement with the full checker.
	rc, err := equiv.NewRechecker(merged)
	if err != nil {
		return pt, err
	}
	if err := rc.Check(base, analyzer.Options{}); err != nil {
		return pt, fmt.Errorf("baseline proof: %w", err)
	}
	incStart := time.Now()
	_, incErr := rc.RecheckReplan(regional, rep, analyzer.Options{})
	pt.EquivMs = ms(time.Since(incStart))
	fullErr := equiv.CheckPlanAgainst(merged, regional, analyzer.Options{})
	pt.EquivAgree = (incErr == nil) == (fullErr == nil)
	if incErr != nil {
		return pt, fmt.Errorf("repaired plan failed equivalence: %w", incErr)
	}
	return pt, nil
}
