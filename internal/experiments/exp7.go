package experiments

import (
	"fmt"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/workload"
)

// --- Exp#7: incremental replanning under churn ---

// ReplanPoint is one program-count row of the drain sweep: the same
// drain event replanned from scratch (ReplanFull) and incrementally
// (ReplanAuto), on the same cold plan.
type ReplanPoint struct {
	// Programs is the workload size.
	Programs int
	// Drained is the switch taken out of MAT hosting (the busiest
	// switch of the cold plan — the worst-case drain).
	Drained network.SwitchID
	// DisplacedMATs is how many MATs the drain stranded.
	DisplacedMATs int
	// ColdMs and IncMs are the full-solve and incremental replan
	// latencies in milliseconds.
	ColdMs float64
	IncMs  float64
	// Speedup is ColdMs / IncMs.
	Speedup float64
	// MovedFull and MovedInc count MATs that changed switch versus the
	// pre-drain plan under each strategy (the migration cost).
	MovedFull int
	MovedInc  int
	// DirtyInc is the incremental repair's dirty-set size (displaced
	// MATs plus the dependency frontier).
	DirtyInc int
	// ColdAMax and IncAMax are Eq. 1 after each replan.
	ColdAMax int
	IncAMax  int
	// AMaxRatio is IncAMax / ColdAMax (1.0 = repair matches the cold
	// solve; the acceptance bound is 1.1 at 50 programs).
	AMaxRatio float64
	// FellBack marks rows where the auto replan abandoned the repair
	// and ran the full solver (IncMs then measures the fallback path).
	FellBack bool
}

// Exp7 measures replanning after a single-switch drain on the first
// Table III topology, sweeping the program count from 10 to programs
// (the paper's evaluation sizes; 50 is the headline point). For each
// count it solves cold with the greedy, drains the busiest switch of
// that plan, and replans twice — full and incremental — off the same
// pre-drain plan. Program counts evaluate concurrently under
// cfg.Workers; rows come back in count order.
func Exp7(cfg Config, programs int) ([]ReplanPoint, error) {
	topo, err := network.TableIII(1, network.TofinoSpec())
	if err != nil {
		return nil, err
	}
	var counts []int
	for n := 10; n <= programs; n += 10 {
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		counts = []int{programs}
	}
	cellWorkers := cfg.Workers
	if cfg.workers() > 1 {
		cellWorkers = 1
	}
	points := make([]ReplanPoint, len(counts))
	errs := make([]error, len(counts))
	runParallel(len(counts), cfg.workers(), func(i int) {
		progs, err := workload.EvaluationPrograms(counts[i], cfg.Seed)
		if err != nil {
			errs[i] = err
			return
		}
		inst, err := buildInstance(progs, topo)
		if err != nil {
			errs[i] = err
			return
		}
		pt, err := replanPoint(inst, counts[i], cellWorkers)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: exp7 at %d programs: %w", counts[i], err)
			return
		}
		points[i] = *pt
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return points, nil
}

// replanPoint runs one drain event both ways.
func replanPoint(inst *instance, programs, workers int) (*ReplanPoint, error) {
	opts := placement.Options{Workers: workers}
	cold, err := (placement.Greedy{}).Solve(inst.merged, inst.topo, opts)
	if err != nil {
		return nil, err
	}
	drained, displaced := busiestSwitch(cold)

	full, fullRep, err := placement.ReplanWithOptions(cold, placement.Greedy{},
		placement.ReplanOptions{Options: opts, Mode: placement.ReplanFull}, drained)
	if err != nil {
		return nil, err
	}
	inc, incRep, err := placement.ReplanWithOptions(cold, placement.Greedy{},
		placement.ReplanOptions{Options: opts, Mode: placement.ReplanAuto}, drained)
	if err != nil {
		return nil, err
	}

	pt := &ReplanPoint{
		Programs:      programs,
		Drained:       drained,
		DisplacedMATs: displaced,
		ColdMs:        float64(fullRep.TotalTime) / float64(time.Millisecond),
		IncMs:         float64(incRep.TotalTime) / float64(time.Millisecond),
		MovedFull:     fullRep.MovedMATs,
		MovedInc:      incRep.MovedMATs,
		DirtyInc:      incRep.DirtyMATs,
		ColdAMax:      full.AMax(),
		IncAMax:       inc.AMax(),
		FellBack:      !incRep.UsedRepair,
	}
	if pt.IncMs > 0 {
		pt.Speedup = pt.ColdMs / pt.IncMs
	}
	if pt.ColdAMax > 0 {
		pt.AMaxRatio = float64(pt.IncAMax) / float64(pt.ColdAMax)
	} else if pt.IncAMax == 0 {
		pt.AMaxRatio = 1
	}
	return pt, nil
}

// busiestSwitch returns the plan's most loaded switch (by hosted MATs;
// ties break toward the smaller ID) and its MAT count — the drain that
// displaces the most work.
func busiestSwitch(p *placement.Plan) (network.SwitchID, int) {
	load := map[network.SwitchID]int{}
	for _, sp := range p.Assignments {
		load[sp.Switch]++
	}
	var best network.SwitchID
	bestN := -1
	for u, n := range load {
		if n > bestN || (n == bestN && u < best) {
			best, bestN = u, n
		}
	}
	return best, bestN
}
