package baseline

import (
	"fmt"
	"sort"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// FFL is the "first fit by level" heuristic [8,6]: MATs are taken level
// by level and dropped onto the first switch that still fits them.
type FFL struct{}

var _ placement.Solver = (*FFL)(nil)

// Name implements placement.Solver.
func (FFL) Name() string { return "FFL" }

// Solve implements placement.Solver.
func (FFL) Solve(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error) {
	return levelFit(g, topo, opts, false, "FFL")
}

// FFLS is "first fit by level and size": like FFL but larger MATs first
// within a level.
type FFLS struct{}

var _ placement.Solver = (*FFLS)(nil)

// Name implements placement.Solver.
func (FFLS) Name() string { return "FFLS" }

// Solve implements placement.Solver.
func (FFLS) Solve(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error) {
	return levelFit(g, topo, opts, true, "FFLS")
}

func levelFit(g *tdg.Graph, topo *network.Topology, opts placement.Options, bySize bool, name string) (*placement.Plan, error) {
	start := time.Now()
	rm := optsModel(opts)
	p, err := newPlacer(g, topo, rm)
	if err != nil {
		return nil, err
	}
	order, err := levelOrder(g, rm, bySize)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	for _, mat := range order {
		if err := p.firstFit(mat); err != nil {
			return nil, err
		}
	}
	return p.finish(name, start)
}

// MinStage models Min-Stage [8] extended to network-wide operation:
// each program is deployed as a unit on the first switch that can host
// it with the fewest stages (the greedy packer already minimizes stage
// count); programs that fit no single switch fall back to first-fit
// MAT placement from the current switch on.
type MinStage struct{}

var _ placement.Solver = (*MinStage)(nil)

// Name implements placement.Solver.
func (MinStage) Name() string { return "MS" }

// Solve implements placement.Solver.
func (MinStage) Solve(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error) {
	return perProgram(g, topo, opts, "MS", false)
}

// Sonata models Sonata [4] extended to network-wide operation: each
// program (query) is deployed as a unit, choosing the feasible switch
// with the most remaining headroom.
type Sonata struct{}

var _ placement.Solver = (*Sonata)(nil)

// Name implements placement.Solver.
func (Sonata) Name() string { return "Sonata" }

// Solve implements placement.Solver.
func (Sonata) Solve(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error) {
	return perProgram(g, topo, opts, "Sonata", true)
}

func perProgram(g *tdg.Graph, topo *network.Topology, opts placement.Options, name string, balance bool) (*placement.Plan, error) {
	start := time.Now()
	rm := optsModel(opts)
	p, err := newPlacer(g, topo, rm)
	if err != nil {
		return nil, err
	}
	for _, group := range programGroups(g) {
		// Topologically order the group's MATs.
		sub, err := g.Subgraph(group)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		order, err := sub.TopoSort()
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		// Find a single switch hosting the whole group.
		idx := p.groupFit(order, balance)
		if idx >= 0 {
			for _, mat := range order {
				p.place(idx, mat)
			}
			continue
		}
		// Fall back to per-MAT placement.
		for _, mat := range order {
			if err := p.firstFit(mat); err != nil {
				return nil, err
			}
		}
	}
	return p.finish(name, start)
}

// groupFit returns a switch index that can host the whole group at once
// (respecting predecessor ordering), or -1. With balance set it prefers
// the emptiest feasible switch, otherwise the first.
func (p *placer) groupFit(order []string, balance bool) int {
	min := 0
	for _, mat := range order {
		if m := p.minIndex(mat); m > min {
			min = m
		}
	}
	best := -1
	bestRem := -1.0
	for idx := min; idx < len(p.switches); idx++ {
		if !p.groupFits(idx, order) {
			continue
		}
		if !balance {
			return idx
		}
		st := p.switches[idx]
		rem := st.sw.Capacity() - st.used
		if rem > bestRem {
			bestRem = rem
			best = idx
		}
	}
	return best
}

// groupFits trial-packs the whole group on switch idx and rolls back.
func (p *placer) groupFits(idx int, order []string) bool {
	st := p.switches[idx]
	savedUsed := st.used
	savedNames := len(st.names)
	savedStage := append([]float64(nil), st.stageUsed...)
	var committed []string

	ok := true
	for _, mat := range order {
		sp, fit := p.tryPack(idx, mat)
		if !fit {
			ok = false
			break
		}
		st.names = append(st.names, mat)
		st.placements[mat] = sp
		for i, amt := range sp.PerStage {
			st.stageUsed[sp.Start+i] += amt
		}
		node, _ := p.g.Node(mat)
		st.used += p.rm.Requirement(node.MAT)
		p.idxOf[mat] = idx
		committed = append(committed, mat)
	}
	// Roll back.
	for _, mat := range committed {
		delete(st.placements, mat)
		delete(p.idxOf, mat)
	}
	st.names = st.names[:savedNames]
	st.used = savedUsed
	copy(st.stageUsed, savedStage)
	return ok
}

// SPEED models SPEED [6]: network-wide deployment over the merged TDG
// that optimizes packet-processing performance. It splits the TDG at
// resource-balanced cuts (not metadata-minimal ones) and anchors the
// segment chain where the summed inter-switch path latency is smallest.
type SPEED struct{}

var _ placement.Solver = (*SPEED)(nil)

// Name implements placement.Solver.
func (SPEED) Name() string { return "SPEED" }

// Solve implements placement.Solver.
func (SPEED) Solve(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error) {
	return segmented(g, topo, opts, "SPEED", 1.0)
}

// MTP models MTP [57]: SPEED plus control-plane load balancing. To keep
// per-switch rule-update load low it halves the per-switch fill target,
// spreading MATs across roughly twice as many switches.
type MTP struct{}

var _ placement.Solver = (*MTP)(nil)

// Name implements placement.Solver.
func (MTP) Name() string { return "MTP" }

// Solve implements placement.Solver.
func (MTP) Solve(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error) {
	return segmented(g, topo, opts, "MTP", 0.5)
}

// segmented splits the TDG into balanced segments, each at most
// fillFactor of a switch, then places the chain on the latency-best
// anchor neighborhood.
func segmented(g *tdg.Graph, topo *network.Topology, opts placement.Options, name string, fillFactor float64) (*placement.Plan, error) {
	start := time.Now()
	rm := optsModel(opts)
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("baseline: empty TDG")
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	prog := topo.ProgrammableSwitches()
	if len(prog) == 0 {
		return nil, fmt.Errorf("baseline: no programmable switches")
	}
	ref, err := topo.Switch(prog[0])
	if err != nil {
		return nil, err
	}
	eps2 := len(prog)
	if opts.Epsilon2 > 0 && opts.Epsilon2 < eps2 {
		eps2 = opts.Epsilon2
	}
	// Spread only as far as the switch budget allows: a fill target
	// below total/ε2 would demand more switches than exist. Greedy
	// first-fill can still overshoot, so raise the target until the
	// segment count fits (or the target saturates at a full switch).
	if minFill := g.TotalRequirement(rm) / (float64(eps2) * ref.Capacity()); fillFactor < minFill {
		fillFactor = minFill
	}
	if fillFactor > 1 {
		fillFactor = 1
	}
	var segments [][]string
	for {
		var serr error
		segments, serr = balancedSplit(g, rm, ref, fillFactor)
		if serr != nil {
			return nil, serr
		}
		if len(segments) <= eps2 || fillFactor >= 1 {
			break
		}
		fillFactor *= 1.25
		if fillFactor > 1 {
			fillFactor = 1
		}
	}
	if len(segments) > eps2 {
		return nil, fmt.Errorf("baseline: %s needs %d switches, ε2=%d", name, len(segments), eps2)
	}

	// Choose the anchor whose neighborhood minimizes total chain latency.
	type anchored struct {
		cands []network.SwitchID
		lat   time.Duration
	}
	var best *anchored
	for _, u := range prog {
		near, err := topo.NearestProgrammable(u, eps2-1, opts.Epsilon1)
		if err != nil {
			return nil, err
		}
		cands := append([]network.SwitchID{u}, near...)
		if len(cands) < len(segments) {
			continue
		}
		lat, err := topo.ChainLatency(cands[:len(segments)])
		if err != nil {
			continue
		}
		if best == nil || lat < best.lat {
			best = &anchored{cands: cands, lat: lat}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("baseline: %s found no feasible anchor", name)
	}

	plan := &placement.Plan{
		Graph:       g,
		Topo:        topo,
		Assignments: map[string]placement.StagePlacement{},
		SolverName:  name,
	}
	for i, seg := range segments {
		sw, err := topo.Switch(best.cands[i])
		if err != nil {
			return nil, err
		}
		placed, err := placement.PackStages(g, seg, sw, rm)
		if err != nil {
			return nil, fmt.Errorf("baseline: %s segment %d: %w", name, i, err)
		}
		for n, sp := range placed {
			plan.Assignments[n] = sp
		}
	}
	if err := placement.AddRoutes(plan); err != nil {
		return nil, err
	}
	plan.SolveTime = time.Since(start)
	return plan, nil
}

// balancedSplit cuts the topological order into consecutive segments,
// filling each as far as an actual stage packing on a fillFactor-scaled
// reference switch allows (resource-balanced, byte-oblivious — the
// point of the SPEED/MTP models). Every segment holds at least one MAT.
func balancedSplit(g *tdg.Graph, rm program.ResourceModel, ref *network.Switch, fillFactor float64) ([][]string, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	test := *ref
	test.StageCapacity = ref.StageCapacity * fillFactor
	var segments [][]string
	var cur []string
	for _, name := range order {
		cand := append(append([]string(nil), cur...), name)
		if placement.FitsSwitch(g, cand, &test, rm) {
			cur = cand
			continue
		}
		if len(cur) == 0 {
			return nil, fmt.Errorf("baseline: MAT %q alone exceeds the segment target", name)
		}
		segments = append(segments, cur)
		cur = []string{name}
		if !placement.FitsSwitch(g, cur, &test, rm) {
			return nil, fmt.Errorf("baseline: MAT %q alone exceeds the segment target", name)
		}
	}
	if len(cur) > 0 {
		segments = append(segments, cur)
	}
	return segments, nil
}

// optsModel resolves the effective resource model from Options.
func optsModel(opts placement.Options) program.ResourceModel {
	if opts.Resources != nil {
		return *opts.Resources
	}
	return program.DefaultResourceModel
}

// Flightplan models Flightplan [7]: disaggregation at program
// boundaries. Every origin program becomes one segment (split further
// only if it cannot fit a switch), and segments are placed first-fit.
type Flightplan struct{}

var _ placement.Solver = (*Flightplan)(nil)

// Name implements placement.Solver.
func (Flightplan) Name() string { return "FP" }

// Solve implements placement.Solver.
func (Flightplan) Solve(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error) {
	start := time.Now()
	rm := optsModel(opts)
	p, err := newPlacer(g, topo, rm)
	if err != nil {
		return nil, err
	}
	for _, group := range programGroups(g) {
		sub, err := g.Subgraph(group)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		order, err := sub.TopoSort()
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		if idx := p.groupFit(order, false); idx >= 0 {
			for _, mat := range order {
				p.place(idx, mat)
			}
			continue
		}
		for _, mat := range order {
			if err := p.firstFit(mat); err != nil {
				return nil, err
			}
		}
	}
	return p.finish("FP", start)
}

// P4All models P4All [59]: modular programs with elastic data
// structures sized to use switch resources as fully as possible. MATs
// are placed on the fullest feasible switch.
type P4All struct{}

var _ placement.Solver = (*P4All)(nil)

// Name implements placement.Solver.
func (P4All) Name() string { return "P4All" }

// Solve implements placement.Solver.
func (P4All) Solve(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error) {
	start := time.Now()
	rm := optsModel(opts)
	p, err := newPlacer(g, topo, rm)
	if err != nil {
		return nil, err
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	for _, mat := range order {
		if err := p.fullestFit(mat); err != nil {
			return nil, err
		}
	}
	return p.finish("P4All", start)
}

// All returns one instance of every baseline, in the paper's order.
func All() []placement.Solver {
	return []placement.Solver{
		MinStage{}, Sonata{}, SPEED{}, MTP{}, Flightplan{}, P4All{}, FFL{}, FFLS{},
	}
}

// Sorted names of all baselines, for reports.
func Names() []string {
	solvers := All()
	out := make([]string, len(solvers))
	for i, s := range solvers {
		out[i] = s.Name()
	}
	sort.Strings(out)
	return out
}
