package baseline

import (
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

func fixedMAT(name string, req float64) *program.MAT {
	return &program.MAT{
		Name:             name,
		Capacity:         16,
		FixedRequirement: req,
		Actions: []program.Action{{
			Name: "a",
			Ops:  []program.Op{program.SetOp(fields.Metadata("meta."+name, 8), 1)},
		}},
	}
}

// figure1 reproduces the paper's Figure 1 workload: a -> b (1 B),
// b -> c (4 B); switches tolerate two MATs each.
func figure1(t *testing.T) (*tdg.Graph, *network.Topology) {
	t.Helper()
	g := tdg.New()
	for _, n := range []string{"a", "b", "c"} {
		if err := g.AddNode(fixedMAT(n, 0.5), "prog"); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("a", "b", tdg.DepMatch, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("b", "c", tdg.DepMatch, 4); err != nil {
		t.Fatal(err)
	}
	tp := network.NewTopology("testbed")
	for i := 0; i < 3; i++ {
		tp.AddSwitch(network.Switch{
			Programmable:   true,
			Stages:         2,
			StageCapacity:  0.5,
			TransitLatency: time.Microsecond,
		})
	}
	for i := 0; i < 2; i++ {
		if err := tp.AddLink(network.SwitchID(i), network.SwitchID(i+1), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return g, tp
}

// twoPrograms builds two origin programs of two MATs each, with
// distinct requirements so packing behaviour differs between solvers.
func twoPrograms(t *testing.T) (*tdg.Graph, *network.Topology) {
	t.Helper()
	g := tdg.New()
	specs := []struct {
		name   string
		origin string
		req    float64
	}{
		{"p1/x", "p1", 0.4}, {"p1/y", "p1", 0.4},
		{"p2/x", "p2", 0.3}, {"p2/y", "p2", 0.3},
	}
	for _, s := range specs {
		if err := g.AddNode(fixedMAT(s.name, s.req), s.origin); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("p1/x", "p1/y", tdg.DepMatch, 4); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("p2/x", "p2/y", tdg.DepMatch, 2); err != nil {
		t.Fatal(err)
	}
	tp := network.NewTopology("net")
	for i := 0; i < 4; i++ {
		tp.AddSwitch(network.Switch{
			Programmable:   true,
			Stages:         4,
			StageCapacity:  0.5,
			TransitLatency: time.Microsecond,
		})
	}
	for i := 0; i < 3; i++ {
		if err := tp.AddLink(network.SwitchID(i), network.SwitchID(i+1), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return g, tp
}

func TestAllBaselinesSolveFigure1(t *testing.T) {
	g, tp := figure1(t)
	for _, s := range All() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			plan, err := s.Solve(g, tp, placement.Options{})
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
				t.Fatalf("%s invalid plan: %v", s.Name(), err)
			}
			if plan.SolverName != s.Name() {
				t.Errorf("SolverName = %q, want %q", plan.SolverName, s.Name())
			}
		})
	}
}

func TestFFLIsByteOblivious(t *testing.T) {
	// FFL fills switch 0 with a and b (level order, first fit), pushing
	// the expensive b->c edge (4 B) across switches — the paper's
	// Figure 1(a) outcome.
	g, tp := figure1(t)
	plan, err := (FFL{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.AMax(); got != 4 {
		t.Errorf("FFL AMax = %d, want 4 (Figure 1a)", got)
	}
	ua, _ := plan.SwitchOf("a")
	ub, _ := plan.SwitchOf("b")
	if ua != ub {
		t.Errorf("FFL should co-locate a and b: %d vs %d", ua, ub)
	}
}

func TestFFLSOrdersBySize(t *testing.T) {
	// Two independent level-0 MATs: big (0.8) and small (0.2) declared
	// small-first. On 1-stage switches of capacity 1.0, FFL places
	// small then big -> big overflows to switch 1; FFLS places big
	// first so both land on switch 0... capacity 1.0 fits both
	// (0.8+0.2) in one stage? One stage capacity 1.0 fits both only if
	// stage capacity >= 1.0 total. Use independent MATs so same stage is
	// fine.
	g := tdg.New()
	if err := g.AddNode(fixedMAT("small", 0.2)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(fixedMAT("big", 0.9)); err != nil {
		t.Fatal(err)
	}
	tp := network.NewTopology("net")
	for i := 0; i < 2; i++ {
		tp.AddSwitch(network.Switch{
			Programmable: true, Stages: 1, StageCapacity: 1, TransitLatency: 0,
		})
	}
	if err := tp.AddLink(0, 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// FFL: small on s0 (0.2), big does not fit s0 (1.1 > 1.0) -> s1.
	fp, err := (FFL{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	us, _ := fp.SwitchOf("small")
	ub, _ := fp.SwitchOf("big")
	if us != 0 || ub != 1 {
		t.Errorf("FFL placement = small@%d big@%d, want 0/1", us, ub)
	}
	// FFLS: big first on s0 (0.9), small does not fit s0 -> s1.
	fsp, err := (FFLS{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ub2, _ := fsp.SwitchOf("big")
	if ub2 != 0 {
		t.Errorf("FFLS should place big first on switch 0, got %d", ub2)
	}
}

func TestPerProgramSolversKeepProgramsTogether(t *testing.T) {
	g, tp := twoPrograms(t)
	for _, s := range []placement.Solver{MinStage{}, Sonata{}, Flightplan{}} {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			plan, err := s.Solve(g, tp, placement.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, prog := range []string{"p1", "p2"} {
				ux, _ := plan.SwitchOf(prog + "/x")
				uy, _ := plan.SwitchOf(prog + "/y")
				if ux != uy {
					t.Errorf("%s split program %s across %d and %d", s.Name(), prog, ux, uy)
				}
			}
			if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSonataBalancesAcrossSwitches(t *testing.T) {
	g, tp := twoPrograms(t)
	plan, err := (Sonata{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The emptiest-fit rule sends the two programs to different
	// switches.
	u1, _ := plan.SwitchOf("p1/x")
	u2, _ := plan.SwitchOf("p2/x")
	if u1 == u2 {
		t.Errorf("Sonata put both programs on switch %d; want balanced", u1)
	}
}

func TestMinStagePacksSequentially(t *testing.T) {
	g, tp := twoPrograms(t)
	plan, err := (MinStage{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First-fit per program: p1 (0.8 total) on switch 0; p2 (0.6) also
	// fits switch 0 by capacity (1.4 <= 2.0)? Stage capacity 0.5 and 4
	// stages: p1 takes stages 0,1; p2 can take stages 2,3 -> same
	// switch.
	u1, _ := plan.SwitchOf("p1/x")
	u2, _ := plan.SwitchOf("p2/x")
	if u1 != 0 || u2 != 0 {
		t.Errorf("MS placement = p1@%d p2@%d, want both on 0", u1, u2)
	}
}

func TestMTPSpreadsMoreThanSPEED(t *testing.T) {
	// A 4-MAT chain with total requirement 1.6 on 2.0-capacity
	// switches: SPEED fills one switch as far as possible; MTP halves
	// the fill target and uses more switches.
	g := tdg.New()
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		if err := g.AddNode(fixedMAT(n, 0.4), "p"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < len(names); i++ {
		if err := g.AddEdge(names[i], names[i+1], tdg.DepMatch, 2); err != nil {
			t.Fatal(err)
		}
	}
	tp := network.NewTopology("net")
	for i := 0; i < 4; i++ {
		tp.AddSwitch(network.Switch{
			Programmable: true, Stages: 4, StageCapacity: 0.5, TransitLatency: time.Microsecond,
		})
	}
	for i := 0; i < 3; i++ {
		if err := tp.AddLink(network.SwitchID(i), network.SwitchID(i+1), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := (SPEED{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := (MTP{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.QOcc() <= sp.QOcc() {
		t.Errorf("MTP QOcc %d should exceed SPEED QOcc %d", mp.QOcc(), sp.QOcc())
	}
	for _, p := range []*placement.Plan{sp, mp} {
		if err := p.Validate(program.DefaultResourceModel, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBaselinesNeverBeatHermesOnFigure1(t *testing.T) {
	g, tp := figure1(t)
	hermes, err := (placement.Greedy{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All() {
		plan, err := s.Solve(g, tp, placement.Options{})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if plan.AMax() < hermes.AMax() {
			t.Errorf("%s AMax %d beats Hermes %d on the overhead objective",
				s.Name(), plan.AMax(), hermes.AMax())
		}
	}
}

func TestBaselineErrors(t *testing.T) {
	_, tp := figure1(t)
	empty := tdg.New()
	for _, s := range All() {
		if _, err := s.Solve(empty, tp, placement.Options{}); err == nil {
			t.Errorf("%s accepted empty TDG", s.Name())
		}
	}
	// No programmable switches.
	g, _ := figure1(t)
	plain := network.NewTopology("plain")
	plain.AddSwitch(network.Switch{})
	for _, s := range All() {
		if _, err := s.Solve(g, plain, placement.Options{}); err == nil {
			t.Errorf("%s accepted topology without programmable switches", s.Name())
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("Names() = %v, want 8 entries", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

func TestBalancedSplit(t *testing.T) {
	g := tdg.New()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		if err := g.AddNode(fixedMAT(n, 0.4)); err != nil {
			t.Fatal(err)
		}
	}
	ref := &network.Switch{Programmable: true, Stages: 2, StageCapacity: 0.5}
	segs, err := balancedSplit(g, program.DefaultResourceModel, ref, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// 5 * 0.4 at 1.0 per segment -> [a b] [c d] [e].
	if len(segs) != 3 {
		t.Fatalf("segments = %v, want 3", segs)
	}
	if len(segs[0]) != 2 || len(segs[1]) != 2 || len(segs[2]) != 1 {
		t.Errorf("segment sizes = %d/%d/%d, want 2/2/1", len(segs[0]), len(segs[1]), len(segs[2]))
	}
	// Halving the fill target (MTP style) doubles the segments.
	segs, err = balancedSplit(g, program.DefaultResourceModel, ref, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 5 {
		t.Errorf("half-fill segments = %d, want 5", len(segs))
	}
	tiny := &network.Switch{Programmable: true, Stages: 1, StageCapacity: 0.3}
	if _, err := balancedSplit(g, program.DefaultResourceModel, tiny, 1.0); err == nil {
		t.Error("oversized MAT accepted")
	}
}
