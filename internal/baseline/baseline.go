// Package baseline reimplements the comparison frameworks of the
// paper's evaluation (§VI-A) by their published behaviour. None of them
// optimizes the per-packet byte overhead, which is exactly the gap
// Hermes targets:
//
//   - FFL / FFLS [8,6]: first-fit (by level / by level and size)
//     heuristics extended to place programs across switches one by one.
//   - Min-Stage (MS) [8]: per-program single-switch deployment that
//     minimizes occupied stages, extended to deploy programs one by one.
//   - Sonata [4]: per-program single-switch deployment that balances
//     per-switch resource headroom.
//   - SPEED [6]: network-wide deployment optimizing packet-processing
//     performance (end-to-end path latency), with TDG merging.
//   - MTP [57]: SPEED plus control-plane load balancing — it spreads
//     rules across more switches, increasing coordination.
//   - Flightplan (FP) [7]: program disaggregation at program
//     boundaries; each program's tables stay together when they fit.
//   - P4All [59]: modular programming with elastic structures; models
//     as best-fit utilization packing (fill switches as full as
//     possible).
//
// Every baseline returns a placement.Plan so Hermes and the baselines
// are compared with identical metrics and validators.
package baseline

import (
	"fmt"
	"sort"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// swState tracks one programmable switch during sequential placement,
// including its per-stage occupancy so feasibility checks and the final
// plan come from the same incremental packing.
type swState struct {
	sw         *network.Switch
	names      []string
	used       float64
	stageUsed  []float64
	placements map[string]placement.StagePlacement
}

// placer performs order-respecting sequential placement: MATs arrive in
// topological order and may land only on the switch hosting their last
// predecessor or a later one, so the contracted switch graph stays
// acyclic by construction. Placement is packed into stages
// incrementally; what fits is what ships.
type placer struct {
	g        *tdg.Graph
	topo     *network.Topology
	rm       program.ResourceModel
	switches []*swState
	// idxOf maps MAT name to its switch index in switches.
	idxOf map[string]int
}

func newPlacer(g *tdg.Graph, topo *network.Topology, rm program.ResourceModel) (*placer, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("baseline: empty TDG")
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	prog := topo.ProgrammableSwitches()
	if len(prog) == 0 {
		return nil, fmt.Errorf("baseline: no programmable switches")
	}
	p := &placer{g: g, topo: topo, rm: rm, idxOf: map[string]int{}}
	for _, id := range prog {
		sw, err := topo.Switch(id)
		if err != nil {
			return nil, err
		}
		p.switches = append(p.switches, &swState{
			sw:         sw,
			stageUsed:  make([]float64, sw.Stages),
			placements: map[string]placement.StagePlacement{},
		})
	}
	return p, nil
}

// minIndex returns the lowest switch index the MAT may use given its
// already-placed predecessors.
func (p *placer) minIndex(name string) int {
	min := 0
	for _, e := range p.g.InEdges(name) {
		if idx, ok := p.idxOf[e.From]; ok && idx > min {
			min = idx
		}
	}
	return min
}

// tryPack computes where the MAT would land on switch idx, honoring
// same-switch predecessor stage order (Eq. 8) and per-stage capacity
// (Eq. 9). ok is false when it does not fit.
func (p *placer) tryPack(idx int, name string) (placement.StagePlacement, bool) {
	const tol = 1e-9
	st := p.switches[idx]
	node, _ := p.g.Node(name)
	req := p.rm.Requirement(node.MAT)
	if st.used+req > st.sw.Capacity()+tol {
		return placement.StagePlacement{}, false
	}
	earliest := 0
	for _, e := range p.g.InEdges(name) {
		if pi, ok := p.idxOf[e.From]; ok && pi == idx {
			if sp, ok := st.placements[e.From]; ok && sp.End+1 > earliest {
				earliest = sp.End + 1
			}
		}
	}
	if earliest >= st.sw.Stages {
		return placement.StagePlacement{}, false
	}
	var perStage []float64
	start, end := -1, -1
	rem := req
	for s := earliest; s < st.sw.Stages && rem > tol; s++ {
		avail := st.sw.StageCapacity - st.stageUsed[s]
		if avail <= tol {
			if start >= 0 {
				perStage = append(perStage, 0)
			}
			continue
		}
		chunk := avail
		if rem < chunk {
			chunk = rem
		}
		if start < 0 {
			start = s
		}
		end = s
		perStage = append(perStage, chunk)
		rem -= chunk
	}
	if rem > tol || start < 0 {
		return placement.StagePlacement{}, false
	}
	perStage = perStage[:end-start+1]
	return placement.StagePlacement{
		Switch:   st.sw.ID,
		Start:    start,
		End:      end,
		PerStage: perStage,
	}, true
}

// fits reports whether adding the MAT to switch idx keeps it packable.
func (p *placer) fits(idx int, name string) bool {
	_, ok := p.tryPack(idx, name)
	return ok
}

// place commits the MAT to switch idx; the MAT must fit (checked by
// tryPack).
func (p *placer) place(idx int, name string) {
	sp, ok := p.tryPack(idx, name)
	if !ok {
		// Callers check fits() first; reaching here is a programming
		// error, surfaced loudly in finish() by the missing placement.
		return
	}
	st := p.switches[idx]
	st.names = append(st.names, name)
	st.placements[name] = sp
	for i, amt := range sp.PerStage {
		st.stageUsed[sp.Start+i] += amt
	}
	node, _ := p.g.Node(name)
	st.used += p.rm.Requirement(node.MAT)
	p.idxOf[name] = idx
}

// firstFit places the MAT on the first feasible switch at or after its
// minimum index.
func (p *placer) firstFit(name string) error {
	for idx := p.minIndex(name); idx < len(p.switches); idx++ {
		if p.fits(idx, name) {
			p.place(idx, name)
			return nil
		}
	}
	return fmt.Errorf("baseline: MAT %q fits no switch", name)
}

// fullestFit places the MAT on the feasible switch with the highest
// utilization (P4All-style packing), at or after its minimum index.
func (p *placer) fullestFit(name string) error {
	best := -1
	for idx := p.minIndex(name); idx < len(p.switches); idx++ {
		if !p.fits(idx, name) {
			continue
		}
		if best < 0 || p.switches[idx].used > p.switches[best].used {
			best = idx
		}
	}
	if best < 0 {
		return fmt.Errorf("baseline: MAT %q fits no switch", name)
	}
	p.place(best, name)
	return nil
}

// emptiestFit places the MAT on the feasible switch with the most
// remaining headroom (Sonata-style balancing), at or after its minimum
// index.
func (p *placer) emptiestFit(name string) error {
	best := -1
	bestRem := -1.0
	for idx := p.minIndex(name); idx < len(p.switches); idx++ {
		if !p.fits(idx, name) {
			continue
		}
		rem := p.switches[idx].sw.Capacity() - p.switches[idx].used
		if rem > bestRem {
			bestRem = rem
			best = idx
		}
	}
	if best < 0 {
		return fmt.Errorf("baseline: MAT %q fits no switch", name)
	}
	p.place(best, name)
	return nil
}

// finish materializes the accumulated assignment into a Plan.
func (p *placer) finish(solver string, start time.Time) (*placement.Plan, error) {
	plan := &placement.Plan{
		Graph:       p.g,
		Topo:        p.topo,
		Assignments: map[string]placement.StagePlacement{},
		SolverName:  solver,
	}
	for _, st := range p.switches {
		for name, sp := range st.placements {
			plan.Assignments[name] = sp
		}
		if len(st.names) != len(st.placements) {
			return nil, fmt.Errorf("baseline: switch %q has %d names but %d placements",
				st.sw.Name, len(st.names), len(st.placements))
		}
	}
	if err := placement.AddRoutes(plan); err != nil {
		return nil, err
	}
	plan.SolveTime = time.Since(start)
	return plan, nil
}

// levelOrder returns MAT names level by level; within a level, by
// insertion order, or by descending requirement when bySize is set
// (FFL vs FFLS).
func levelOrder(g *tdg.Graph, rm program.ResourceModel, bySize bool) ([]string, error) {
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	names := g.NodeNames()
	sort.SliceStable(names, func(i, j int) bool {
		li, lj := levels[names[i]], levels[names[j]]
		if li != lj {
			return li < lj
		}
		if bySize {
			ni, _ := g.Node(names[i])
			nj, _ := g.Node(names[j])
			return rm.Requirement(ni.MAT) > rm.Requirement(nj.MAT)
		}
		return false // keep insertion order within a level
	})
	return names, nil
}

// programGroups clusters MAT names by their first origin program, in
// first-appearance order; used by the one-by-one frameworks.
func programGroups(g *tdg.Graph) [][]string {
	var order []string
	groups := map[string][]string{}
	for _, n := range g.Nodes() {
		key := ""
		if len(n.Origin) > 0 {
			key = n.Origin[0]
		}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], n.Name())
	}
	out := make([][]string, 0, len(order))
	for _, key := range order {
		out = append(out, groups[key])
	}
	return out
}
