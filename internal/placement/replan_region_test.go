package placement

import (
	"testing"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/workload"
)

// regionalFixture solves a composite-WAN instance large enough to
// partition meaningfully and returns the plan plus its partition.
func regionalFixture(t *testing.T, regions int) (*Plan, *network.Partition) {
	t.Helper()
	topo, err := network.CompositeWAN(4, network.TofinoSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := workload.SyntheticSet(16, workload.PaperSyntheticSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Greedy{}.Solve(g, topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	part, err := network.PartitionRegions(topo, regions, 42)
	if err != nil {
		t.Fatal(err)
	}
	return plan, part
}

// busiest returns the used switch hosting the most MATs (ties to the
// smaller ID) — the drain target that maximizes displaced work.
func busiest(p *Plan) network.SwitchID {
	counts := map[network.SwitchID]int{}
	for _, sp := range p.Assignments {
		counts[sp.Switch]++
	}
	best, bestN := network.SwitchID(-1), -1
	for id, n := range counts {
		if n > bestN || (n == bestN && id < best) {
			best, bestN = id, n
		}
	}
	return best
}

// TestRegionalReplanHealsLocally: with a partition on the options the
// repair takes the region-local path, displaces everything off the
// drained switch, touches only dirty MATs, and passes the same gate
// stack as the whole-topology repair.
func TestRegionalReplanHealsLocally(t *testing.T) {
	old, part := regionalFixture(t, 4)
	drain := busiest(old)

	fresh, rep, err := ReplanWithOptions(old, Greedy{}, ReplanOptions{Partition: part}, drain)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedRepair || !rep.UsedRegional {
		t.Fatalf("expected the regional repair path, got %+v", rep)
	}
	if len(rep.RegionsTouched) == 0 {
		t.Fatal("regional repair reported no touched regions")
	}
	want := part.RegionOf(drain)
	found := false
	for _, r := range rep.RegionsTouched {
		if r == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("drained switch's region %d not in touched set %v", want, rep.RegionsTouched)
	}
	if err := fresh.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatalf("regional repair produced invalid plan: %v", err)
	}
	for name, sp := range fresh.Assignments {
		if sp.Switch == drain {
			t.Errorf("MAT %q still hosted on drained switch %d", name, drain)
		}
	}
	// Only dirty MATs may move, and everything on the drained switch must.
	if rep.MovedMATs == 0 || rep.MovedMATs > rep.DirtyMATs {
		t.Fatalf("moved %d MATs with %d dirty", rep.MovedMATs, rep.DirtyMATs)
	}
	for name, sp := range old.Assignments {
		if sp.Switch == drain && fresh.Assignments[name].Switch == drain {
			t.Fatalf("displaced MAT %q not re-placed", name)
		}
	}
	if rep.Phases.Regions <= 0 || rep.Phases.Gates <= 0 {
		t.Fatalf("phase breakdown missing regional phases: %+v", rep.Phases)
	}
	if rep.Phases.Repair != 0 || rep.Phases.Polish != 0 {
		t.Fatalf("regional repair leaked whole-topology phases: %+v", rep.Phases)
	}
}

// TestRegionalReplanDeterministic: the regional path is deterministic
// across worker counts (regions repair concurrently, but each region's
// repair is serial and the merges are disjoint).
func TestRegionalReplanDeterministic(t *testing.T) {
	old, part := regionalFixture(t, 4)
	drain := busiest(old)
	var base map[string]network.SwitchID
	for _, w := range []int{1, 4} {
		p, rep, err := ReplanWithOptions(old, Greedy{},
			ReplanOptions{Options: Options{Workers: w}, Partition: part}, drain)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if !rep.UsedRegional {
			t.Fatalf("Workers=%d: regional path not taken", w)
		}
		got := assignmentOf(p)
		if base == nil {
			base = got
			continue
		}
		if len(got) != len(base) {
			t.Fatalf("Workers=%d: assignment size diverged", w)
		}
		for name, u := range base {
			if got[name] != u {
				t.Fatalf("Workers=%d: MAT %q placed on %d, want %d", w, name, got[name], u)
			}
		}
	}
}

// TestRegionalReplanWeighted: the regional path honors a traffic
// matrix (weighted candidate scoring and polish) and still validates.
func TestRegionalReplanWeighted(t *testing.T) {
	old, part := regionalFixture(t, 3)
	tm, err := network.GenerateTraffic(old.Topo, network.TrafficModels()[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	drain := busiest(old)
	fresh, rep, err := ReplanWithOptions(old, Greedy{},
		ReplanOptions{Options: Options{Traffic: tm}, Partition: part}, drain)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedRegional {
		t.Fatal("regional path not taken under traffic")
	}
	if err := fresh.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// TestRegionalReplanPartitionMismatch: a partition over a different
// switch ID space is rejected up front, not silently misapplied.
func TestRegionalReplanPartitionMismatch(t *testing.T) {
	old, _ := regionalFixture(t, 3)
	other, err := network.TableIII(1, network.TofinoSpec())
	if err != nil {
		t.Fatal(err)
	}
	part, err := network.PartitionRegions(other, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	drain := busiest(old)
	if _, _, err := ReplanWithOptions(old, Greedy{}, ReplanOptions{Partition: part}, drain); err == nil {
		t.Fatal("mismatched partition accepted")
	}
}
