// Traffic-weighted scoring kernels (DESIGN.md §13). The structural
// objective A_max (Eq. 1) charges every switch pair the same; the
// weighted objective charges a pair by the packet rate that actually
// crosses it, so the solvers minimize
//
//	W_sum = Σ_{u≠v} w(u,v)·A(u,v)   (TrafficWeightedSum)
//	W_max = max_{u≠v} w(u,v)·A(u,v) (TrafficWeightedMax)
//
// subject to the same Eq. 4–9 constraints, plus a guard that the
// structural A_max never inflates beyond Options.AMaxSlack of the
// solve's own structural optimum. Weights are a dense S×S fixed-point
// table compiled once from a network.TrafficMatrix (host-compacted
// for the sharded exchange); the kernels mirror the MoveScore/
// PlaceScore loop shapes in compile.go and stay allocation-free with
// caller-owned scratch. Map-based twins live in weighted_ref.go as
// differential oracles.
package placement

import (
	"fmt"
	"math"

	"github.com/hermes-net/hermes/internal/network"
)

// TrafficObjective selects which weighted aggregate the solvers
// minimize when Options.Traffic is set.
type TrafficObjective int

const (
	// TrafficWeightedSum minimizes Σ w(u,v)·A(u,v) — total coordination
	// byte-rate across the network. The default.
	TrafficWeightedSum TrafficObjective = iota
	// TrafficWeightedMax minimizes max w(u,v)·A(u,v) — the hot-pair
	// coordination byte-rate.
	TrafficWeightedMax
)

// String implements fmt.Stringer.
func (o TrafficObjective) String() string {
	switch o {
	case TrafficWeightedSum:
		return "sum"
	case TrafficWeightedMax:
		return "max"
	default:
		return fmt.Sprintf("TrafficObjective(%d)", int(o))
	}
}

// ParseTrafficObjective converts the CLI spelling of an objective.
func ParseTrafficObjective(s string) (TrafficObjective, error) {
	switch s {
	case "sum", "":
		return TrafficWeightedSum, nil
	case "max":
		return TrafficWeightedMax, nil
	default:
		return 0, fmt.Errorf("placement: unknown traffic objective %q (want sum or max)", s)
	}
}

// weightScale is the fixed-point resolution of the weight table: the
// hottest pair maps to 1<<20, so int64 products w·bytes stay exact and
// far from overflow (≤ 2^20 · 2^31), and every solve is deterministic
// regardless of float scheduling.
const weightScale = 1 << 20

// WeightTable is the dense S×S fixed-point pair-weight table in the
// same flat cell space as PairTable. Every off-diagonal cell holds at
// least 1: a pair with no crossing packets is never free (coordination
// headers still need carrier packets), it is just 2^20× cheaper than
// the hottest pair. Immutable after construction; safe for concurrent
// use.
type WeightTable struct {
	S int32
	W []int64
}

// NewWeightTable quantizes a dense S×S pair-rate table (the
// network.TrafficMatrix.PairRates layout) into fixed point.
func NewWeightTable(rates []float64, s int32) *WeightTable {
	wt := &WeightTable{S: s, W: make([]int64, int(s)*int(s))}
	maxRate := 0.0
	for _, r := range rates {
		if r > maxRate {
			maxRate = r
		}
	}
	for i := range wt.W {
		w := int64(1)
		if maxRate > 0 && i < len(rates) {
			if q := int64(math.Round(rates[i] / maxRate * weightScale)); q > w {
				w = q
			}
		}
		wt.W[i] = w
	}
	return wt
}

// CompileWeights routes the matrix's demands over the instance's
// topology and quantizes the resulting pair rates. The matrix must
// cover the instance's switch ID space.
func (ci *CompiledInstance) CompileWeights(tm *network.TrafficMatrix) (*WeightTable, error) {
	rates, err := tm.PairRates(ci.Topo)
	if err != nil {
		return nil, err
	}
	return NewWeightTable(rates, ci.S), nil
}

// Compact projects the table onto a host subset in host index order —
// the shard exchange's compacted space (hosts[i] is the global switch
// behind host index i).
func (wt *WeightTable) Compact(hosts []network.SwitchID) *WeightTable {
	h := int32(len(hosts))
	out := &WeightTable{S: h, W: make([]int64, int(h)*int(h))}
	for i, gi := range hosts {
		for j, gj := range hosts {
			out.W[int32(i)*h+int32(j)] = wt.W[int32(gi)*wt.S+int32(gj)]
		}
	}
	return out
}

// WeightMap decodes the table into the boundary representation for the
// differential twins in weighted_ref.go.
func (wt *WeightTable) WeightMap() map[RouteKey]int64 {
	out := make(map[RouteKey]int64, len(wt.W))
	for u := int32(0); u < wt.S; u++ {
		for v := int32(0); v < wt.S; v++ {
			if u != v {
				out[RouteKey{From: network.SwitchID(u), To: network.SwitchID(v)}] = wt.W[u*wt.S+v]
			}
		}
	}
	return out
}

// Score aggregates the weighted objective over a pair table: the sum
// Σ w·A and the max w·A over the touched cells (decayed cells floor at
// zero, exactly like PairTable.Max).
func (wt *WeightTable) Score(pt *PairTable) (sum, max int64) {
	//hermes:hot
	for _, k := range pt.Keys() {
		b := pt.Cells[k]
		if b <= 0 {
			continue
		}
		v := wt.W[k] * int64(b)
		sum += v
		if v > max {
			max = v
		}
	}
	return sum, max
}

// AssignmentWeighted is the weighted objective of a dense assignment
// from scratch: the compiled twin of AssignmentWeightedRef. pt is
// caller-owned scratch (left holding the assignment's pair bytes).
func (ci *CompiledInstance) AssignmentWeighted(assign []int32, pt *PairTable, wt *WeightTable) (sum, max int64) {
	ci.FillPairTable(assign, pt)
	return wt.Score(pt)
}

// MoveScoreWeighted computes the weighted objective (sum and max) of
// the assignment with MAT x moved to switch c and everything else
// fixed, without mutating any state: the weighted companion of
// MoveScore and the compiled twin of MoveScoreWeightedRef. curSum is
// the current weighted sum matching (assign, pt); ms is caller scratch
// (contents discarded). O(deg(x) + pairs), allocation-free.
func (ci *CompiledInstance) MoveScoreWeighted(assign []int32, pt *PairTable, ms *MoveScratch, wt *WeightTable, x, c int32, curSum int64) (sum, max int64) {
	ms.reset()
	old := assign[x]
	s := pt.S
	//hermes:hot
	for _, ei := range ci.Incident[x] {
		var peer, oldCell, newCell int32
		if ci.EdgeFrom[ei] == x {
			peer = assign[ci.EdgeTo[ei]]
			oldCell = old*s + peer
			newCell = c*s + peer
		} else {
			peer = assign[ci.EdgeFrom[ei]]
			oldCell = peer*s + old
			newCell = peer*s + c
		}
		b := ci.EdgeBytes[ei]
		if peer != old {
			ms.add(oldCell, -b)
		}
		if peer != c {
			ms.add(newCell, b)
		}
	}
	return ms.weightedOver(pt, wt, curSum)
}

// PlaceScoreWeighted computes the weighted objective that results from
// placing the currently-unassigned MAT x on switch u, everything else
// fixed: the weighted companion of PlaceScore and the compiled twin of
// PlaceScoreWeightedRef. Edges to still-unassigned peers contribute
// nothing. curSum is the weighted sum matching (assign, pt).
func (ci *CompiledInstance) PlaceScoreWeighted(assign []int32, pt *PairTable, ms *MoveScratch, wt *WeightTable, x, u int32, curSum int64) (sum, max int64) {
	ms.reset()
	s := pt.S
	//hermes:hot
	for _, ei := range ci.Out[x] {
		if peer := assign[ci.EdgeTo[ei]]; peer >= 0 && peer != u {
			ms.add(u*s+peer, ci.EdgeBytes[ei])
		}
	}
	//hermes:hot
	for _, ei := range ci.In[x] {
		if peer := assign[ci.EdgeFrom[ei]]; peer >= 0 && peer != u {
			ms.add(peer*s+u, ci.EdgeBytes[ei])
		}
	}
	return ms.weightedOver(pt, wt, curSum)
}

// weightedOver folds the delta overlay onto the pair table under the
// weight table: the weighted analog of maxOver. The sum is maintained
// incrementally from curSum (only delta cells change); the max needs
// the same O(pairs) scan as maxOver. Cells floor at zero on both
// sides, matching the map twins.
func (ms *MoveScratch) weightedOver(pt *PairTable, wt *WeightTable, curSum int64) (sum, max int64) {
	sum = curSum
	//hermes:hot
	for _, k := range ms.keys {
		old := pt.Cells[k]
		if old < 0 {
			old = 0
		}
		nb := pt.Cells[k] + ms.delta[k]
		if nb < 0 {
			nb = 0
		}
		sum += wt.W[k] * int64(nb-old)
	}
	//hermes:hot
	for _, k := range pt.keys {
		v := pt.Cells[k] + ms.delta[k]
		if v <= 0 {
			continue
		}
		if wv := wt.W[k] * int64(v); wv > max {
			max = wv
		}
	}
	//hermes:hot
	for _, k := range ms.keys {
		if pt.inKeys[k] || ms.delta[k] <= 0 {
			continue
		}
		if wv := wt.W[k] * int64(ms.delta[k]); wv > max {
			max = wv
		}
	}
	return sum, max
}

// objective picks the aggregate the options ask for.
func (o TrafficObjective) pick(sum, max int64) int64 {
	if o == TrafficWeightedMax {
		return max
	}
	return sum
}

// Pick returns the aggregate this objective minimizes given both
// candidates — the exported face of the selection for the sharded
// exchange, which re-scores proposals outside this package.
func (o TrafficObjective) Pick(sum, max int64) int64 { return o.pick(sum, max) }

// AMaxCap resolves the options' structural-inflation ceiling against a
// structural baseline: the absolute A_max a weighted solve may reach.
// Exported for the sharded exchange, which anchors the cap to the
// merged region solves' A_max.
func AMaxCap(o Options, baseA int) int { return o.amaxCap(baseA) }
