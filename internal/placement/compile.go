// Compiled placement core: the solvers' inner loops evaluate the
// paper's P#1 objective (Eq. 1) and constraints (Eq. 6–9) millions of
// times per solve, and the string-keyed boundary representation
// (map[string]SwitchID assignments, map[RouteKey]int pair tables) pays
// hashing and allocation on every candidate. CompiledInstance interns
// MAT names and switch IDs into dense int32 indices once per
// (graph, topology, resource model) and exposes allocation-free
// scoring kernels over flat arrays; the map-based API stays as the
// boundary (compile on solver entry, decode into Plan on exit). The
// map-based originals are retained in ref.go as differential oracles —
// every kernel is property-tested to agree with its map twin
// bit-for-bit.
package placement

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// compiledMemoKey memoizes the CompiledInstance on the graph, next to
// the pack memo: the graph drops it on any mutation, and Compile
// revalidates the topology/model side itself.
const compiledMemoKey = "placement.compiledInstance"

// CompiledInstance is the dense-index form of one placement instance.
// MAT index space is the alphabetically sorted node-name list (the
// order localImprove already iterates); switch index space is the
// topology's SwitchID space, which is dense by construction. All
// fields are built once and treated as immutable; scratch state lives
// in PairTable/MoveScratch/CycleScratch values owned by each caller,
// so one instance is safe for concurrent use.
type CompiledInstance struct {
	Graph *tdg.Graph
	Topo  *network.Topology

	// Names and Index translate between the boundary representation
	// and MAT index space; Names is sorted.
	Names []string
	Index map[string]int32

	// Edge arrays in tdg.EdgeList order. Out/In hold edge indices per
	// MAT ordered like tdg.OutEdges/InEdges (peer-name sorted), so
	// kernels that mirror map-based loops visit edges identically;
	// Incident holds both directions in EdgeList order.
	EdgeFrom, EdgeTo []int32
	EdgeBytes        []int32
	Out, In          [][]int32
	Incident         [][]int32

	// Req is R(a) per MAT under rm.
	Req []float64

	// Per-switch trait arrays indexed by SwitchID; Prog lists the
	// programmable switch IDs ascending.
	S            int32
	Programmable []bool
	Stages       []int32
	StageCap     []float64
	Caps         []float64
	Prog         []network.SwitchID

	rm    program.ResourceModel
	links int
	// epoch pins the topology's fault state at compile time; a fault
	// mutation (switch/link down or heal) bumps the topology's counter
	// and forces a rebuild, since Programmable/Prog and lat bake the
	// overlay in.
	epoch uint64

	// lat is the dense shortest-path latency table, fetched lazily:
	// parallel Exact branches share one instance, so the fetch is
	// guarded by a Once.
	latOnce sync.Once
	lat     []time.Duration
}

// Compile returns the dense-index form of (g, topo, rm), memoized on
// the graph. The memo is dropped by tdg on any graph mutation; switch
// traits can be mutated in place without a graph mutation (replan
// drains flip Programmable/Stages directly), so a hit is revalidated
// against the live switch fields in O(S).
func Compile(g *tdg.Graph, topo *network.Topology, rm program.ResourceModel) *CompiledInstance {
	if v, ok := g.Memo(compiledMemoKey); ok {
		if ci, ok := v.(*CompiledInstance); ok && ci.matches(topo, rm) {
			return ci
		}
	}
	ci := compile(g, topo, rm)
	g.MemoSet(compiledMemoKey, ci)
	return ci
}

// matches reports whether the memoized instance still describes the
// live topology and resource model. Pointer identity pins the switch
// ID space (the memo keeps the topology alive, so the address cannot
// be recycled); the per-switch field scan catches in-place trait
// mutation, and the link count catches links added after compilation
// (links cannot be removed).
func (ci *CompiledInstance) matches(topo *network.Topology, rm program.ResourceModel) bool {
	if ci.Topo != topo || ci.rm != rm || int(ci.S) != topo.NumSwitches() || ci.links != topo.NumLinks() {
		return false
	}
	if ci.epoch != topo.FaultEpoch() {
		return false
	}
	for id := int32(0); id < ci.S; id++ {
		sw, err := topo.Switch(network.SwitchID(id))
		if err != nil {
			return false
		}
		up := sw.Programmable && !topo.SwitchIsDown(network.SwitchID(id))
		if up != ci.Programmable[id] ||
			int32(sw.Stages) != ci.Stages[id] ||
			sw.StageCapacity != ci.StageCap[id] {
			return false
		}
	}
	return true
}

func compile(g *tdg.Graph, topo *network.Topology, rm program.ResourceModel) *CompiledInstance {
	names := g.NodeNames()
	sort.Strings(names)
	idx := make(map[string]int32, len(names))
	for i, n := range names {
		idx[n] = int32(i)
	}
	s := topo.NumSwitches()
	ci := &CompiledInstance{
		Graph: g,
		Topo:  topo,
		Names: names,
		Index: idx,
		S:     int32(s),
		rm:    rm,
		links: topo.NumLinks(),
		epoch: topo.FaultEpoch(),
	}

	ci.Req = make([]float64, len(names))
	ci.Out = make([][]int32, len(names))
	ci.In = make([][]int32, len(names))
	ci.Incident = make([][]int32, len(names))
	for i, name := range names {
		node, _ := g.Node(name)
		ci.Req[i] = rm.Requirement(node.MAT)
	}

	edges := g.EdgeList()
	ci.EdgeFrom = make([]int32, len(edges))
	ci.EdgeTo = make([]int32, len(edges))
	ci.EdgeBytes = make([]int32, len(edges))
	edgeAt := make(map[[2]int32]int32, len(edges))
	for ei, e := range edges {
		f, t := idx[e.From], idx[e.To]
		ci.EdgeFrom[ei] = f
		ci.EdgeTo[ei] = t
		ci.EdgeBytes[ei] = int32(e.MetadataBytes)
		ci.Incident[f] = append(ci.Incident[f], int32(ei))
		ci.Incident[t] = append(ci.Incident[t], int32(ei))
		edgeAt[[2]int32{f, t}] = int32(ei)
	}
	for i, name := range names {
		for _, e := range g.OutEdges(name) {
			ci.Out[i] = append(ci.Out[i], edgeAt[[2]int32{int32(i), idx[e.To]}])
		}
		for _, e := range g.InEdges(name) {
			ci.In[i] = append(ci.In[i], edgeAt[[2]int32{idx[e.From], int32(i)}])
		}
	}

	ci.Programmable = make([]bool, s)
	ci.Stages = make([]int32, s)
	ci.StageCap = make([]float64, s)
	ci.Caps = make([]float64, s)
	for id := 0; id < s; id++ {
		sw, err := topo.Switch(network.SwitchID(id))
		if err != nil {
			continue
		}
		// A down switch is indistinguishable from non-programmable for
		// placement purposes; the epoch check above rebuilds on heal.
		up := sw.Programmable && !topo.SwitchIsDown(sw.ID)
		ci.Programmable[id] = up
		ci.Stages[id] = int32(sw.Stages)
		ci.StageCap[id] = sw.StageCapacity
		ci.Caps[id] = sw.Capacity()
		if up {
			ci.Prog = append(ci.Prog, sw.ID)
		}
	}
	return ci
}

// compileSubset is compile restricted to a subset of g's MATs, against
// a (typically compacted) topology. The region-local replan builds one
// instance per dirty region this way: materializing a tdg.Subgraph just
// to compile it costs more than the whole region repair (fresh
// string-keyed node/edge maps plus an uncached topological sort), while
// the dense arrays can be carved straight out of g. names must be
// sorted and duplicate-free; edges are kept when both endpoints are in
// the subset, in g's EdgeList order, so the kernels' iteration order is
// deterministic. The instance is not memoized (the subset is
// call-specific) and its Graph field keeps pointing at g — callers that
// need full-graph facts (canonical pack order, TopoIndex) already hold
// g.
func compileSubset(g *tdg.Graph, names []string, topo *network.Topology, rm program.ResourceModel) (*CompiledInstance, error) {
	idx := make(map[string]int32, len(names))
	for i, n := range names {
		idx[n] = int32(i)
	}
	s := topo.NumSwitches()
	ci := &CompiledInstance{
		Graph: g,
		Topo:  topo,
		Names: names,
		Index: idx,
		S:     int32(s),
		rm:    rm,
		links: topo.NumLinks(),
		epoch: topo.FaultEpoch(),
	}

	ci.Req = make([]float64, len(names))
	ci.Out = make([][]int32, len(names))
	ci.In = make([][]int32, len(names))
	ci.Incident = make([][]int32, len(names))
	for i, name := range names {
		node, ok := g.Node(name)
		if !ok {
			return nil, fmt.Errorf("placement: compile subset references unknown MAT %q", name)
		}
		ci.Req[i] = rm.Requirement(node.MAT)
	}

	// One pass over g's edge list fills every edge array. Out/In here
	// follow EdgeList order rather than compile's peer-name order: the
	// kernels only fold commutative sums over them (ms.add/pt.Add), so
	// any fixed order yields identical scores, and skipping the
	// per-name tdg.OutEdges/InEdges walks (each sorts and copies) keeps
	// the per-region compile out of the replan's critical path.
	for _, e := range g.EdgeList() {
		f, fok := idx[e.From]
		t, tok := idx[e.To]
		if !fok || !tok {
			continue
		}
		ei := int32(len(ci.EdgeFrom))
		ci.EdgeFrom = append(ci.EdgeFrom, f)
		ci.EdgeTo = append(ci.EdgeTo, t)
		ci.EdgeBytes = append(ci.EdgeBytes, int32(e.MetadataBytes))
		ci.Incident[f] = append(ci.Incident[f], ei)
		ci.Incident[t] = append(ci.Incident[t], ei)
		ci.Out[f] = append(ci.Out[f], ei)
		ci.In[t] = append(ci.In[t], ei)
	}

	ci.Programmable = make([]bool, s)
	ci.Stages = make([]int32, s)
	ci.StageCap = make([]float64, s)
	ci.Caps = make([]float64, s)
	for id := 0; id < s; id++ {
		sw, err := topo.Switch(network.SwitchID(id))
		if err != nil {
			continue
		}
		up := sw.Programmable && !topo.SwitchIsDown(sw.ID)
		ci.Programmable[id] = up
		ci.Stages[id] = int32(sw.Stages)
		ci.StageCap[id] = sw.StageCapacity
		ci.Caps[id] = sw.Capacity()
		if up {
			ci.Prog = append(ci.Prog, sw.ID)
		}
	}
	return ci, nil
}

// latencies returns the dense shortest-path latency table (entry
// [u*S+v] = shortest latency u→v, -1 when unreachable).
func (ci *CompiledInstance) latencies() []time.Duration {
	ci.latOnce.Do(func() { ci.lat = ci.Topo.LatencyTable() })
	return ci.lat
}

// DenseAssign converts a (possibly partial) name-keyed assignment into
// MAT index space; unassigned MATs are -1.
func (ci *CompiledInstance) DenseAssign(assign map[string]network.SwitchID) []int32 {
	out := make([]int32, len(ci.Names))
	for i := range out {
		out[i] = -1
	}
	for name, u := range assign {
		if x, ok := ci.Index[name]; ok {
			out[x] = int32(u)
		}
	}
	return out
}

// PlanAssign is DenseAssign over a Plan's stage placements.
func (ci *CompiledInstance) PlanAssign(p *Plan) []int32 {
	out := make([]int32, len(ci.Names))
	for i := range out {
		out[i] = -1
	}
	for name, sp := range p.Assignments {
		if x, ok := ci.Index[name]; ok {
			out[x] = int32(sp.Switch)
		}
	}
	return out
}

// AssignMap decodes a dense assignment back into the boundary
// representation, skipping unassigned MATs.
func (ci *CompiledInstance) AssignMap(assign []int32) map[string]network.SwitchID {
	out := make(map[string]network.SwitchID, len(assign))
	for x, u := range assign {
		if u >= 0 {
			out[ci.Names[x]] = network.SwitchID(u)
		}
	}
	return out
}

// PairTable is the flat S×S cross-byte matrix of one assignment: cell
// [src*S+dst] holds A(src,dst) in bytes. keys lists every cell that
// ever held bytes, so scans touch O(pairs) cells, not S²; cells may
// decay to zero and contribute nothing to A_max (floored at zero,
// exactly like the map-based table).
type PairTable struct {
	S      int32
	Cells  []int32
	keys   []int32
	inKeys []bool
}

// NewPairTable allocates an empty table sized for the instance.
func (ci *CompiledInstance) NewPairTable() *PairTable {
	n := int(ci.S) * int(ci.S)
	return &PairTable{S: ci.S, Cells: make([]int32, n), inKeys: make([]bool, n)}
}

// Reset clears the table in O(touched cells).
func (pt *PairTable) Reset() {
	for _, k := range pt.keys {
		pt.Cells[k] = 0
		pt.inKeys[k] = false
	}
	pt.keys = pt.keys[:0]
}

// Add accumulates bytes into one cell, tracking first touch.
func (pt *PairTable) Add(cell, bytes int32) {
	if !pt.inKeys[cell] {
		pt.inKeys[cell] = true
		pt.keys = append(pt.keys, cell)
	}
	pt.Cells[cell] += bytes
}

// Keys returns the touched-cell list (read-only, unspecified order).
func (pt *PairTable) Keys() []int32 { return pt.keys }

// Max returns A_max = max over cells (Eq. 1), floored at zero.
func (pt *PairTable) Max() int {
	m := int32(0)
	//hermes:hot
	for _, k := range pt.keys {
		if pt.Cells[k] > m {
			m = pt.Cells[k]
		}
	}
	return int(m)
}

// FillPairTable recomputes the table from a dense assignment and
// returns the total cross bytes. Edges with an unassigned endpoint or
// both endpoints co-located contribute nothing.
func (ci *CompiledInstance) FillPairTable(assign []int32, pt *PairTable) int {
	pt.Reset()
	total := 0
	//hermes:hot
	for ei := range ci.EdgeFrom {
		ua := assign[ci.EdgeFrom[ei]]
		ub := assign[ci.EdgeTo[ei]]
		if ua < 0 || ub < 0 || ua == ub {
			continue
		}
		pt.Add(ua*pt.S+ub, ci.EdgeBytes[ei])
		total += int(ci.EdgeBytes[ei])
	}
	return total
}

// AssignmentAMax is Eq. 1 over a dense assignment: the compiled twin
// of AssignmentAMaxRef. pt is caller-owned scratch.
func (ci *CompiledInstance) AssignmentAMax(assign []int32, pt *PairTable) int {
	ci.FillPairTable(assign, pt)
	return pt.Max()
}

// MoveScratch is caller-owned scratch for move/place evaluation: a
// sparse delta overlay in the same flat cell space as PairTable.
type MoveScratch struct {
	delta  []int32
	keys   []int32
	inKeys []bool
}

// NewMoveScratch allocates scratch sized for the instance.
func (ci *CompiledInstance) NewMoveScratch() *MoveScratch {
	n := int(ci.S) * int(ci.S)
	return &MoveScratch{delta: make([]int32, n), inKeys: make([]bool, n)}
}

func (ms *MoveScratch) reset() {
	for _, k := range ms.keys {
		ms.delta[k] = 0
		ms.inKeys[k] = false
	}
	ms.keys = ms.keys[:0]
}

func (ms *MoveScratch) add(cell, bytes int32) {
	if !ms.inKeys[cell] {
		ms.inKeys[cell] = true
		ms.keys = append(ms.keys, cell)
	}
	ms.delta[cell] += bytes
}

// maxOver folds the delta overlay onto the pair table and returns the
// resulting A_max without mutating either.
func (ms *MoveScratch) maxOver(pt *PairTable) int {
	m := int32(0)
	//hermes:hot
	for _, k := range pt.keys {
		v := pt.Cells[k] + ms.delta[k]
		if v > m {
			m = v
		}
	}
	//hermes:hot
	for _, k := range ms.keys {
		if !pt.inKeys[k] && ms.delta[k] > m {
			m = ms.delta[k]
		}
	}
	return int(m)
}

// MoveScore computes the absolute (A_max, total cross bytes) of the
// assignment with MAT x moved to switch c and everything else fixed,
// without mutating any state: the compiled twin of MoveScoreRef.
// Requires every MAT incident to x to be assigned; total is the
// current total cross bytes matching (assign, pt). O(deg(x) + pairs).
func (ci *CompiledInstance) MoveScore(assign []int32, pt *PairTable, ms *MoveScratch, x, c int32, total int) (int, int) {
	ms.reset()
	cross := total
	old := assign[x]
	s := pt.S
	//hermes:hot
	for _, ei := range ci.Incident[x] {
		var peer, oldCell, newCell int32
		if ci.EdgeFrom[ei] == x {
			peer = assign[ci.EdgeTo[ei]]
			oldCell = old*s + peer
			newCell = c*s + peer
		} else {
			peer = assign[ci.EdgeFrom[ei]]
			oldCell = peer*s + old
			newCell = peer*s + c
		}
		b := ci.EdgeBytes[ei]
		if peer != old {
			ms.add(oldCell, -b)
			cross -= int(b)
		}
		if peer != c {
			ms.add(newCell, b)
			cross += int(b)
		}
	}
	return ms.maxOver(pt), cross
}

// ApplyMove commits MAT x to switch c, folding the move into the pair
// table and dense assignment, and returns the new total cross bytes.
func (ci *CompiledInstance) ApplyMove(assign []int32, pt *PairTable, x, c int32, total int) int {
	old := assign[x]
	s := pt.S
	//hermes:hot
	for _, ei := range ci.Incident[x] {
		var peer, oldCell, newCell int32
		if ci.EdgeFrom[ei] == x {
			peer = assign[ci.EdgeTo[ei]]
			oldCell = old*s + peer
			newCell = c*s + peer
		} else {
			peer = assign[ci.EdgeFrom[ei]]
			oldCell = peer*s + old
			newCell = peer*s + c
		}
		b := ci.EdgeBytes[ei]
		if peer != old {
			pt.Add(oldCell, -b)
			total -= int(b)
		}
		if peer != c {
			pt.Add(newCell, b)
			total += int(b)
		}
	}
	assign[x] = c
	return total
}

// PlaceScore computes the A_max that results from placing the
// currently-unassigned MAT x on switch u, everything else fixed: the
// compiled twin of PlaceScoreRef. Edges to still-unassigned peers
// contribute nothing, matching the repair pass's incremental scoring.
func (ci *CompiledInstance) PlaceScore(assign []int32, pt *PairTable, ms *MoveScratch, x, u int32) int {
	ms.reset()
	s := pt.S
	//hermes:hot
	for _, ei := range ci.Out[x] {
		if peer := assign[ci.EdgeTo[ei]]; peer >= 0 && peer != u {
			ms.add(u*s+peer, ci.EdgeBytes[ei])
		}
	}
	//hermes:hot
	for _, ei := range ci.In[x] {
		if peer := assign[ci.EdgeFrom[ei]]; peer >= 0 && peer != u {
			ms.add(peer*s+u, ci.EdgeBytes[ei])
		}
	}
	return ms.maxOver(pt)
}

// ApplyPlace folds the placement of MAT x on switch u into the pair
// table. The caller updates assign[x] itself (the repair pass sets it
// before its acyclicity probe).
func (ci *CompiledInstance) ApplyPlace(assign []int32, pt *PairTable, x, u int32) {
	s := pt.S
	//hermes:hot
	for _, ei := range ci.Out[x] {
		if peer := assign[ci.EdgeTo[ei]]; peer >= 0 && peer != u {
			pt.Add(u*s+peer, ci.EdgeBytes[ei])
		}
	}
	//hermes:hot
	for _, ei := range ci.In[x] {
		if peer := assign[ci.EdgeFrom[ei]]; peer >= 0 && peer != u {
			pt.Add(peer*s+u, ci.EdgeBytes[ei])
		}
	}
}

// CycleScratch holds the reusable buffers of the contracted-switch-
// graph acyclicity check.
type CycleScratch struct {
	adj     []int32 // S×S distinct-edge presence, reset via touched
	touched []int32
	indeg   []int32
	present []bool
	ready   []network.SwitchID
}

// NewCycleScratch allocates scratch sized for the instance.
func (ci *CompiledInstance) NewCycleScratch() *CycleScratch {
	n := int(ci.S)
	return &CycleScratch{
		adj:     make([]int32, n*n),
		indeg:   make([]int32, n),
		present: make([]bool, n),
		ready:   make([]network.SwitchID, 0, n),
	}
}

// AssignmentAcyclic reports whether the contracted switch graph of a
// (possibly partial) dense assignment is a DAG (constraint Eq. 7 at
// switch granularity): the compiled twin of the map-based Kahn check
// in assignmentAcyclic. Allocation-free given caller-owned scratch.
func (ci *CompiledInstance) AssignmentAcyclic(assign []int32, cs *CycleScratch) bool {
	s := ci.S
	for _, c := range cs.touched {
		cs.adj[c] = 0
	}
	cs.touched = cs.touched[:0]
	for u := int32(0); u < s; u++ {
		cs.indeg[u] = 0
		cs.present[u] = false
	}
	nodes := 0
	//hermes:hot
	for _, u := range assign {
		if u >= 0 && !cs.present[u] {
			cs.present[u] = true
			nodes++
		}
	}
	// The touched list works through a local in the edge loop (one
	// entry per distinct cross pair, amortized like the rest of the
	// scratch) and is written back for the next call's reset.
	touched := cs.touched
	//hermes:hot
	for ei := range ci.EdgeFrom {
		ua := assign[ci.EdgeFrom[ei]]
		ub := assign[ci.EdgeTo[ei]]
		if ua < 0 || ub < 0 || ua == ub {
			continue
		}
		cell := ua*s + ub
		if cs.adj[cell] == 0 {
			cs.adj[cell] = 1
			touched = append(touched, cell)
			cs.indeg[ub]++
		}
	}
	cs.touched = touched
	ready := cs.ready[:0]
	for u := int32(0); u < s; u++ {
		if cs.present[u] && cs.indeg[u] == 0 {
			ready = append(ready, network.SwitchID(u))
		}
	}
	count := 0
	for len(ready) > 0 {
		u := int32(ready[len(ready)-1])
		ready = ready[:len(ready)-1]
		count++
		row := cs.adj[u*s : (u+1)*s]
		for v, present := range row {
			if present != 0 {
				cs.indeg[v]--
				if cs.indeg[v] == 0 {
					ready = append(ready, network.SwitchID(v))
				}
			}
		}
	}
	cs.ready = ready[:0]
	return count == nodes
}

// AssignmentLatency sums shortest-path latency over the distinct
// communicating switch pairs of a dense assignment (the ε1 bound of
// Eq. 6 as evaluated by moveFeasible); ok is false when some pair is
// disconnected. ms is reused as the seen-pair set.
func (ci *CompiledInstance) AssignmentLatency(assign []int32, ms *MoveScratch) (time.Duration, bool) {
	lat := ci.latencies()
	ms.reset()
	var total time.Duration
	//hermes:hot
	for ei := range ci.EdgeFrom {
		ua := assign[ci.EdgeFrom[ei]]
		ub := assign[ci.EdgeTo[ei]]
		if ua < 0 || ub < 0 || ua == ub {
			continue
		}
		cell := ua*ci.S + ub
		if ms.inKeys[cell] {
			continue
		}
		ms.add(cell, 1)
		l := lat[cell]
		if l < 0 {
			return 0, false
		}
		total += l
	}
	return total, true
}
