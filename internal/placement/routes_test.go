package placement

import (
	"strings"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// parallelTopo builds two disjoint equal-latency routes between 0 and 3:
//
//	0 - 1 - 3
//	0 - 2 - 3
func parallelTopo(t *testing.T) *network.Topology {
	t.Helper()
	tp := network.NewTopology("parallel")
	for i := 0; i < 4; i++ {
		tp.AddSwitch(network.Switch{
			Programmable: true, Stages: 4, StageCapacity: 1,
			TransitLatency: time.Microsecond,
		})
	}
	for _, l := range [][2]network.SwitchID{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
		if err := tp.AddLink(l[0], l[1], time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return tp
}

// planWithPairs fabricates a plan whose cross edges produce the given
// byte loads between switch 0 and switch 3 via separate MAT pairs.
func planWithPairs(t *testing.T, tp *network.Topology, loads []int) *Plan {
	t.Helper()
	g := tdg.New()
	plan := &Plan{Graph: g, Topo: tp, Assignments: map[string]StagePlacement{}}
	for i, bytes := range loads {
		up := fixedMAT(nameN("u", i), 0.1)
		down := fixedMAT(nameN("d", i), 0.1)
		if err := g.AddNode(up); err != nil {
			t.Fatal(err)
		}
		if err := g.AddNode(down); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(up.Name, down.Name, tdg.DepMatch, bytes); err != nil {
			t.Fatal(err)
		}
		plan.Assignments[up.Name] = StagePlacement{Switch: 0, Start: 0, End: 0, PerStage: []float64{0.1}}
		plan.Assignments[down.Name] = StagePlacement{Switch: 3, Start: 1, End: 1, PerStage: []float64{0.1}}
	}
	return plan
}

func nameN(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func TestOptimizeRoutesUsesShortestWhenAlone(t *testing.T) {
	tp := parallelTopo(t)
	plan := planWithPairs(t, tp, []int{10})
	maxLink, err := OptimizeRoutes(plan, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if maxLink != 10 {
		t.Errorf("max link load = %d, want 10", maxLink)
	}
	if len(plan.Routes) != 1 {
		t.Fatalf("routes = %d, want 1", len(plan.Routes))
	}
	if err := plan.Validate(DefaultRM(), 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeRoutesEmptyPlan(t *testing.T) {
	tp := parallelTopo(t)
	plan := planWithPairs(t, tp, nil)
	maxLink, err := OptimizeRoutes(plan, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if maxLink != 0 || len(plan.Routes) != 0 {
		t.Errorf("empty plan routed: max=%d routes=%d", maxLink, len(plan.Routes))
	}
}

func TestOptimizeRoutesValidation(t *testing.T) {
	tp := parallelTopo(t)
	plan := planWithPairs(t, tp, []int{1})
	if _, err := OptimizeRoutes(plan, RouteOptions{K: -1}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := OptimizeRoutes(plan, RouteOptions{Stretch: 0.5}); err == nil {
		t.Error("stretch < 1 accepted")
	}
}

func TestOptimizeRoutesSpreadsContendingPairs(t *testing.T) {
	// Pair 0->3 and pair 1->3 both want the (1,3) link when routed by
	// shortest paths. With K=2 and a generous stretch budget, the
	// optimizer detours one of them, halving the busiest directed link.
	tp := parallelTopo(t)
	plan := planWithPairs(t, tp, []int{10})
	g := plan.Graph
	up := fixedMAT("ru", 0.1)
	down := fixedMAT("rd", 0.1)
	if err := g.AddNode(up); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(down); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("ru", "rd", tdg.DepMatch, 10); err != nil {
		t.Fatal(err)
	}
	plan.Assignments["ru"] = StagePlacement{Switch: 1, Start: 0, End: 0, PerStage: []float64{0.1}}
	plan.Assignments["rd"] = StagePlacement{Switch: 3, Start: 1, End: 1, PerStage: []float64{0.1}}

	maxLink, err := OptimizeRoutes(plan, RouteOptions{K: 3, Stretch: 6})
	if err != nil {
		t.Fatal(err)
	}
	if maxLink != 10 {
		t.Errorf("max link load = %d, want 10 (one pair detours)", maxLink)
	}
	if err := plan.Validate(DefaultRM(), 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeRoutesHonorsStretchBudget(t *testing.T) {
	// Make route via 2 much slower; with stretch 1.0 both pairs must
	// stay on the fast route even though it doubles the link load.
	tp := network.NewTopology("skewed")
	for i := 0; i < 4; i++ {
		tp.AddSwitch(network.Switch{
			Programmable: true, Stages: 4, StageCapacity: 1,
			TransitLatency: time.Microsecond,
		})
	}
	for _, l := range []struct {
		a, b network.SwitchID
		lat  time.Duration
	}{
		{0, 1, time.Millisecond}, {1, 3, time.Millisecond},
		{0, 2, 10 * time.Millisecond}, {2, 3, 10 * time.Millisecond},
	} {
		if err := tp.AddLink(l.a, l.b, l.lat); err != nil {
			t.Fatal(err)
		}
	}
	plan := planWithPairs(t, tp, []int{10})
	g := plan.Graph
	up := fixedMAT("ru", 0.1)
	down := fixedMAT("rd", 0.1)
	if err := g.AddNode(up); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(down); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("ru", "rd", tdg.DepMatch, 10); err != nil {
		t.Fatal(err)
	}
	plan.Assignments["ru"] = StagePlacement{Switch: 3, Start: 0, End: 0, PerStage: []float64{0.1}}
	plan.Assignments["rd"] = StagePlacement{Switch: 0, Start: 1, End: 1, PerStage: []float64{0.1}}

	if _, err := OptimizeRoutes(plan, RouteOptions{K: 2, Stretch: 1.0}); err != nil {
		t.Fatal(err)
	}
	// Opposite directions do not contend (directed links), but with a
	// 1.0 stretch neither pair may take the slow detour through 2.
	for _, path := range plan.Routes {
		if path.Contains(2) {
			t.Error("a pair took the slow route despite stretch 1.0")
		}
	}
}

func TestReplanAfterDrain(t *testing.T) {
	g, tp := figure1(t)
	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	used := plan.UsedSwitches()
	if len(used) < 2 {
		t.Fatal("test expects a multi-switch plan")
	}
	newPlan, err := Replan(plan, Greedy{}, Options{}, used[0])
	if err != nil {
		t.Fatal(err)
	}
	for name := range newPlan.Assignments {
		if sw, _ := newPlan.SwitchOf(name); sw == used[0] {
			t.Errorf("MAT %q still on drained switch %d", name, used[0])
		}
	}
	if err := newPlan.Validate(DefaultRM(), 0, 0); err != nil {
		t.Fatal(err)
	}
	moved, err := Diff(plan, newPlan)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Error("drain moved no MATs")
	}
}

func TestReplanErrors(t *testing.T) {
	g, tp := figure1(t)
	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replan(nil, Greedy{}, Options{}, 0); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := Replan(plan, Greedy{}, Options{}); err == nil {
		t.Error("empty drain list accepted")
	}
	if _, err := Replan(plan, Greedy{}, Options{}, 99); err == nil {
		t.Error("unknown switch accepted")
	}
	// Draining everything must fail.
	if _, err := Replan(plan, Greedy{}, Options{}, 0, 1, 2); err == nil {
		t.Error("draining all switches accepted")
	}
}

func TestDiffErrors(t *testing.T) {
	g, tp := figure1(t)
	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Diff(plan, nil); err == nil {
		t.Error("nil plan accepted")
	}
	if moved, err := Diff(plan, plan); err != nil || moved != 0 {
		t.Errorf("self diff = %d, %v", moved, err)
	}
}

// DefaultRM returns the default resource model; a local shorthand.
func DefaultRM() program.ResourceModel { return program.DefaultResourceModel }

func TestPlanJSONRoundTrip(t *testing.T) {
	g, tp := figure1(t)
	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := plan.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePlan(data, g, tp, program.DefaultResourceModel)
	if err != nil {
		t.Fatal(err)
	}
	if back.AMax() != plan.AMax() || back.QOcc() != plan.QOcc() {
		t.Errorf("round trip changed objectives: A=%d/%d Q=%d/%d",
			back.AMax(), plan.AMax(), back.QOcc(), plan.QOcc())
	}
	if back.TE2E() != plan.TE2E() {
		t.Errorf("route latencies changed: %v vs %v", back.TE2E(), plan.TE2E())
	}
	if back.SolverName != plan.SolverName || back.SolveTime != plan.SolveTime {
		t.Error("provenance lost")
	}
}

func TestDecodePlanRejectsCorruption(t *testing.T) {
	g, tp := figure1(t)
	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := plan.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePlan([]byte("{"), g, tp, program.DefaultResourceModel); err == nil {
		t.Error("malformed JSON decoded")
	}
	// Wrong graph: a TDG missing the assigned MATs.
	other := tdg.New()
	if err := other.AddNode(fixedMAT("zz", 0.1)); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePlan(data, other, tp, program.DefaultResourceModel); err == nil {
		t.Error("plan decoded against wrong TDG")
	}
	// Tampered stage assignment must fail validation.
	tampered := []byte(strings.Replace(string(data), `"start": 0`, `"start": 99`, 1))
	if _, err := DecodePlan(tampered, g, tp, program.DefaultResourceModel); err == nil {
		t.Error("tampered plan decoded")
	}
	// Version gate.
	versioned := []byte(strings.Replace(string(data), `"version": 1`, `"version": 9`, 1))
	if _, err := DecodePlan(versioned, g, tp, program.DefaultResourceModel); err == nil {
		t.Error("future version decoded")
	}
}
