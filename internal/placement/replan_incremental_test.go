package placement

import (
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/workload"
)

// TestDiffSameCountDifferentNames pins the identity fix: two plans with
// equally many MATs but different MAT sets must be rejected, not
// silently diffed (the old check compared only NumNodes).
func TestDiffSameCountDifferentNames(t *testing.T) {
	p := solvedChainPlan(t, 3)
	other, err := Greedy{}.Solve(
		chainTDG(t, []string{"x", "y", "z"}, []int{1, 4}, 0.5), twoMATSwitchTopo(t, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph.NumNodes() != other.Graph.NumNodes() {
		t.Fatal("fixture must have equal node counts")
	}
	if _, err := Diff(p, other); err == nil {
		t.Error("diff across same-sized but differently-named TDGs must be rejected")
	}
}

func TestParseReplanMode(t *testing.T) {
	for spec, want := range map[string]ReplanMode{
		"": ReplanAuto, "auto": ReplanAuto,
		"incremental": ReplanIncremental, "inc": ReplanIncremental, "delta": ReplanIncremental,
		"full": ReplanFull, "cold": ReplanFull,
	} {
		got, err := ParseReplanMode(spec)
		if err != nil || got != want {
			t.Errorf("ParseReplanMode(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	if _, err := ParseReplanMode("bogus"); err == nil {
		t.Error("unknown mode must be rejected")
	}
	if ReplanAuto.String() != "auto" || ReplanIncremental.String() != "incremental" || ReplanFull.String() != "full" {
		t.Error("mode strings must match the CLI spellings")
	}
}

// TestReplanIncrementalRepairsChain checks the delta path end to end on
// the chain fixture: the repair must produce a valid plan off the
// drained switch whose quality matches the cold solve (the polish can
// reunite b and c on a fresh switch, recovering A_max = 1).
func TestReplanIncrementalRepairsChain(t *testing.T) {
	old := solvedChainPlan(t, 3)
	drained := old.UsedSwitches()[0]
	plan, rep, err := ReplanWithOptions(old, nil, ReplanOptions{Mode: ReplanIncremental}, drained)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedRepair {
		t.Error("incremental mode must report UsedRepair")
	}
	if rep.FallbackReason != "" {
		t.Errorf("successful repair must not record a fallback reason, got %q", rep.FallbackReason)
	}
	if rep.DirtyMATs == 0 || rep.MovedMATs == 0 {
		t.Errorf("draining an occupied switch must dirty and move MATs, got dirty=%d moved=%d",
			rep.DirtyMATs, rep.MovedMATs)
	}
	for name, sp := range plan.Assignments {
		if sp.Switch == drained {
			t.Errorf("MAT %q still hosted on drained switch %d", name, drained)
		}
	}
	if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatalf("repaired plan must validate: %v", err)
	}
	cold, err := Replan(old, nil, Options{}, drained)
	if err != nil {
		t.Fatal(err)
	}
	if plan.AMax() > cold.AMax() {
		t.Errorf("repair A_max %dB worse than cold solve %dB on the chain fixture", plan.AMax(), cold.AMax())
	}
	if want := old.SolverName + "+repair"; plan.SolverName != want {
		t.Errorf("repaired plan solver name = %q, want %q", plan.SolverName, want)
	}
}

// TestReplanQualityRatioFallback forces the quality gate: with an
// unsatisfiable ratio the auto mode must fall back to the full solver
// (and record why), while the pinned incremental mode must fail.
func TestReplanQualityRatioFallback(t *testing.T) {
	old := solvedChainPlan(t, 3)
	drained := old.UsedSwitches()[0]
	ropts := ReplanOptions{Mode: ReplanAuto, QualityRatio: 1e-9}

	plan, rep, err := ReplanWithOptions(old, nil, ropts, drained)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedRepair {
		t.Error("auto replan must abandon a repair that exceeds the quality ratio")
	}
	if rep.FallbackReason == "" {
		t.Error("fallback must record its reason")
	}
	if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatalf("fallback plan must validate: %v", err)
	}

	ropts.Mode = ReplanIncremental
	if _, _, err := ReplanWithOptions(old, nil, ropts, drained); err == nil {
		t.Error("pinned incremental mode must fail instead of silently solving cold")
	}
}

func TestReplanFullSkipsRepair(t *testing.T) {
	old := solvedChainPlan(t, 3)
	drained := old.UsedSwitches()[0]
	plan, rep, err := ReplanWithOptions(old, nil, ReplanOptions{Mode: ReplanFull}, drained)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedRepair || rep.DirtyMATs != 0 || rep.RepairTime != 0 {
		t.Errorf("full mode must not attempt a repair: %+v", rep)
	}
	if plan.SolverName == old.SolverName+"+repair" {
		t.Error("full mode must not stamp the repair provenance")
	}
}

// TestWarmGreedyReusesSeed checks the warm-start fast path: re-solving
// with the previous plan as the seed must reproduce it (the seed is
// already a local optimum of the polish) without re-running
// segmentation.
func TestWarmGreedyReusesSeed(t *testing.T) {
	old := solvedChainPlan(t, 3)
	warm, err := Greedy{}.Solve(old.Graph, old.Topo, Options{Warm: old})
	if err != nil {
		t.Fatal(err)
	}
	moved, err := Diff(old, warm)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("warm re-solve of a converged plan moved %d MATs", moved)
	}
}

// TestWarmSeedRejectsInfeasible: a warm plan referencing a drained
// switch must be discarded, and the solver must still succeed cold.
func TestWarmSeedRejectsInfeasible(t *testing.T) {
	old := solvedChainPlan(t, 3)
	drained := old.UsedSwitches()[0]
	topo := old.Topo.Clone()
	sw, err := topo.Switch(drained)
	if err != nil {
		t.Fatal(err)
	}
	sw.Programmable = false
	sw.Stages = 0
	sw.StageCapacity = 0
	if _, ok := warmSeed(old.Graph, topo, Options{Warm: old}); ok {
		t.Fatal("a warm plan using a drained switch must be rejected")
	}
	plan, err := Greedy{}.Solve(old.Graph, topo, Options{Warm: old})
	if err != nil {
		t.Fatal(err)
	}
	for name, sp := range plan.Assignments {
		if sp.Switch == drained {
			t.Errorf("MAT %q landed on the drained switch", name)
		}
	}
}

// tableIIIInstance analyzes an evaluation workload on a Table III WAN.
func tableIIIInstance(t *testing.T, topoIdx, programs int) (*Plan, *network.Topology) {
	t.Helper()
	topo, err := network.TableIII(topoIdx, network.TofinoSpec())
	if err != nil {
		t.Fatal(err)
	}
	progs, err := workload.EvaluationPrograms(programs, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Greedy{}.Solve(g, topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return plan, topo
}

// TestWarmExactNeverWorseThanSeed pins the incumbent-seeding guarantee
// on a Table III instance: a deadline-capped Exact solve warm-started
// from the greedy plan can never report a worse A_max than its seed —
// the seed IS its initial incumbent.
func TestWarmExactNeverWorseThanSeed(t *testing.T) {
	seedPlan, topo := tableIIIInstance(t, 1, 6)
	opts := Options{Warm: seedPlan, Deadline: time.Now().Add(300 * time.Millisecond)}
	exact, err := (Exact{}).Solve(seedPlan.Graph, topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	if exact.AMax() > seedPlan.AMax() {
		t.Errorf("warm-started Exact reported A_max %dB, worse than its %dB seed",
			exact.AMax(), seedPlan.AMax())
	}
}

// TestReplanIncrementalAcceptance is the issue's headline criterion: a
// single-switch drain at 50 evaluation programs on Table III topology 1
// must replan at least 5x faster incrementally than from scratch, with
// A_max within 10% of the cold solve. Timing is retried once to absorb
// scheduler noise.
func TestReplanIncrementalAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("50-program replan sweep in -short mode")
	}
	cold, _ := tableIIIInstance(t, 1, 50)
	drained := busiestAcceptanceSwitch(cold)

	var speedup float64
	var full, inc *Plan
	for attempt := 0; attempt < 2; attempt++ {
		var fullRep, incRep *ReplanReport
		var err error
		full, fullRep, err = ReplanWithOptions(cold, nil, ReplanOptions{Mode: ReplanFull}, drained)
		if err != nil {
			t.Fatal(err)
		}
		inc, incRep, err = ReplanWithOptions(cold, nil, ReplanOptions{Mode: ReplanAuto}, drained)
		if err != nil {
			t.Fatal(err)
		}
		if !incRep.UsedRepair {
			t.Fatalf("auto replan fell back at 50 programs: %s", incRep.FallbackReason)
		}
		speedup = float64(fullRep.TotalTime) / float64(incRep.TotalTime)
		if speedup >= 5 {
			break
		}
	}
	if speedup < 5 {
		t.Errorf("incremental replan speedup %.1fx, want >= 5x", speedup)
	}
	if fa, ia := full.AMax(), inc.AMax(); float64(ia) > 1.1*float64(fa) {
		t.Errorf("incremental A_max %dB exceeds 110%% of the cold solve's %dB", ia, fa)
	}
	if err := inc.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatalf("incremental plan must validate: %v", err)
	}
}

// busiestAcceptanceSwitch mirrors the Exp#7 drain choice.
func busiestAcceptanceSwitch(p *Plan) network.SwitchID {
	load := map[network.SwitchID]int{}
	for _, sp := range p.Assignments {
		load[sp.Switch]++
	}
	var best network.SwitchID
	bestN := -1
	for u, n := range load {
		if n > bestN || (n == bestN && u < best) {
			best, bestN = u, n
		}
	}
	return best
}
