// Map-based reference scorers. These are the pre-compilation
// implementations of the scoring hot paths, retained verbatim as
// differential oracles: the property tests assert that every compiled
// kernel in compile.go agrees with its reference twin bit-for-bit, and
// cmd/hermes-bench measures both sides for the BENCH_core.json
// baseline. They are not called on any solver hot path.
package placement

import (
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/tdg"
)

// AssignmentAMaxRef is Eq. 1 over a name-keyed assignment via a
// freshly built pair map — the reference twin of
// CompiledInstance.AssignmentAMax.
func AssignmentAMaxRef(g *tdg.Graph, assign map[string]network.SwitchID) int {
	return assignmentAMax(g, assign)
}

// PlaceScoreRef scores placing the currently-unassigned MAT on switch
// u through the map-based delta overlay — the reference twin of
// CompiledInstance.PlaceScore. pair and delta follow the replan repair
// pass's conventions (delta is caller scratch, contents discarded).
func PlaceScoreRef(g *tdg.Graph, assign map[string]network.SwitchID, pair, delta map[RouteKey]int, name string, u network.SwitchID) int {
	return placeScore(g, assign, pair, delta, name, u)
}

// MoveScoreRef evaluates the absolute (A_max, total cross bytes) of
// the assignment with one MAT moved to cand and everything else fixed,
// through the map-based delta overlay the local-improve climb used
// before compilation — the reference twin of
// CompiledInstance.MoveScore. Every MAT incident to name must be
// assigned; total is the current total cross bytes matching (assign,
// pair); delta is caller scratch (contents discarded).
func MoveScoreRef(g *tdg.Graph, assign map[string]network.SwitchID, pair, delta map[RouteKey]int, total int, name string, cand network.SwitchID) (int, int) {
	for k := range delta {
		delete(delta, k)
	}
	cross := total
	old := assign[name]
	shift := func(peer network.SwitchID, oldKey, newKey RouteKey, bytes int) {
		if peer != old {
			delta[oldKey] -= bytes
			cross -= bytes
		}
		if peer != cand {
			delta[newKey] += bytes
			cross += bytes
		}
	}
	for _, e := range g.OutEdges(name) {
		peer := assign[e.To]
		shift(peer,
			RouteKey{From: old, To: peer},
			RouteKey{From: cand, To: peer},
			e.MetadataBytes)
	}
	for _, e := range g.InEdges(name) {
		peer := assign[e.From]
		shift(peer,
			RouteKey{From: peer, To: old},
			RouteKey{From: peer, To: cand},
			e.MetadataBytes)
	}
	max := 0
	for k, b := range pair {
		if d, ok := delta[k]; ok {
			b += d
		}
		if b > max {
			max = b
		}
	}
	for k, d := range delta {
		if _, ok := pair[k]; !ok && d > max {
			max = d
		}
	}
	return max, cross
}

// PairBytesRef rebuilds the name-keyed pair map of an assignment — the
// reference twin of CompiledInstance.FillPairTable. It returns the map
// and the total cross bytes.
func PairBytesRef(g *tdg.Graph, assign map[string]network.SwitchID) (map[RouteKey]int, int) {
	pair := map[RouteKey]int{}
	total := 0
	for _, e := range g.EdgeList() {
		ua, oka := assign[e.From]
		ub, okb := assign[e.To]
		if oka && okb && ua != ub {
			pair[RouteKey{From: ua, To: ub}] += e.MetadataBytes
			total += e.MetadataBytes
		}
	}
	return pair, total
}
