package placement

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/tdg"
)

// Exact is a specialized branch & bound over MAT→switch assignments
// that proves the optimal A_max on small instances. It plays the role
// of the paper's Gurobi-backed "Optimal" reference. On larger
// instances it degrades gracefully: given a Deadline (or MaxNodes) it
// returns the best incumbent found, with Proven=false — mirroring the
// paper's two-hour solver cap in Fig. 7.
type Exact struct {
	// MaxNodes caps search nodes; zero means 4e6.
	MaxNodes int
}

var _ Solver = (*Exact)(nil)

// Name implements Solver.
func (Exact) Name() string { return "Optimal" }

// exactState carries the mutable search state over the compiled
// instance. The assignment, per-switch loads, pair-byte matrix, and
// contracted switch graph are all dense arrays indexed by the
// CompiledInstance's MAT/switch index spaces, so one search node costs
// a few array stores plus an append to the shared undo stack — no map
// hashing, no per-node allocation (the undo stack and reachability
// scratch amortize).
type exactState struct {
	ci   *CompiledInstance
	opts Options
	// orderIdx/orderReq are TopoSort order translated to MAT indices
	// with R(a) precomputed; cands is the programmable-switch list.
	orderIdx []int32
	orderReq []float64
	cands    []network.SwitchID
	eps2     int

	assign []int32   // per MAT, -1 when unassigned
	load   []float64 // per switch
	// pair is the flat S×S cross-byte matrix; pairLive replicates the
	// map entry lifecycle exactly (an entry exists from its first add
	// until a subtraction leaves it ≤0 — a zero-byte edge keeps its
	// pair alive for the ε1 sum, just like the map it replaces). swCnt
	// counts contributing edges per cell: the contracted switch graph
	// used for cycle pruning. active/inActive track ever-touched cells
	// so leaf scans stay O(pairs).
	pair     []int32
	pairLive []bool
	swCnt    []int32
	active   []int32
	inActive []bool
	curMax   int
	distinct int

	// Shared undo stack: each dfs candidate records a frame base and
	// pops back to it, replacing the per-node undo log allocation.
	undoCell []int32
	undoByte []int32

	// reachability scratch.
	seen  []bool
	stack []int32

	// Weighted objective state (Options.Traffic): wt is the compiled
	// weight table, curW the running weighted score of the partial
	// assignment (monotone under edge additions for both aggregates, so
	// it is an admissible bound), bestW the incumbent's score, and
	// amaxCap the structural-inflation ceiling (Options.AMaxSlack × the
	// unweighted greedy baseline). nil wt means the structural search.
	wt      *WeightTable
	wobj    TrafficObjective
	curW    int64
	bestW   int64
	amaxCap int

	bestA    int
	bestSet  []int32
	haveBest bool

	// localNodes paces the deadline poll; sharedNodes is the global
	// search-node counter enforcing maxNodes across every branch (and
	// doubling as the sole counter for the sequential search).
	localNodes  int
	sharedNodes *atomic.Int64
	// sharedBest publishes the best incumbent value across branches:
	// a subtree whose running pair maximum strictly exceeds it cannot
	// contain the winning leaf in any branch, so dfs prunes on it.
	// Equality never prunes — an earlier-in-DFS-order branch must still
	// reach its own copy of an equal-valued optimum for the merge
	// tie-break to match the sequential search.
	sharedBest *atomic.Int64
	maxNodes   int
	deadline   time.Time
	capped     bool

	symmetry bool
}

// newExactState sizes the dense arrays for the instance.
func newExactState(ci *CompiledInstance, opts Options) *exactState {
	s := int(ci.S)
	st := &exactState{
		ci:       ci,
		opts:     opts,
		assign:   make([]int32, len(ci.Names)),
		load:     make([]float64, s),
		pair:     make([]int32, s*s),
		pairLive: make([]bool, s*s),
		swCnt:    make([]int32, s*s),
		inActive: make([]bool, s*s),
		seen:     make([]bool, s),
		stack:    make([]int32, 0, s),
		undoCell: make([]int32, 0, len(ci.EdgeFrom)),
		undoByte: make([]int32, 0, len(ci.EdgeFrom)),
		bestA:    int(^uint(0) >> 1), // max int
	}
	for i := range st.assign {
		st.assign[i] = -1
	}
	return st
}

// clone deep-copies the mutable search state (assignment, loads, pair
// matrix, contracted switch graph); the compiled instance and the
// shared atomics are carried over by reference. bestSet is shared too:
// it is only ever replaced wholesale, never mutated in place.
func (st *exactState) clone() *exactState {
	c := *st
	c.assign = append([]int32(nil), st.assign...)
	c.load = append([]float64(nil), st.load...)
	c.pair = append([]int32(nil), st.pair...)
	c.pairLive = append([]bool(nil), st.pairLive...)
	c.swCnt = append([]int32(nil), st.swCnt...)
	c.active = append([]int32(nil), st.active...)
	c.inActive = append([]bool(nil), st.inActive...)
	c.undoCell = make([]int32, 0, cap(st.undoCell))
	c.undoByte = make([]int32, 0, cap(st.undoByte))
	c.seen = make([]bool, len(st.seen))
	c.stack = make([]int32, 0, cap(st.stack))
	return &c
}

// addPair folds bytes into a pair cell and bumps the contracted-graph
// edge count.
func (st *exactState) addPair(cell, bytes int32) {
	if !st.inActive[cell] {
		st.inActive[cell] = true
		st.active = append(st.active, cell)
	}
	st.pair[cell] += bytes
	st.pairLive[cell] = true
	st.swCnt[cell]++
}

// pushUndo records one pair delta on the shared undo stack. The stack
// is pre-sized to the edge count — each dfs frame pushes at most one
// entry per in-edge of a distinct MAT — so steady-state pushes never
// grow it.
func (st *exactState) pushUndo(cell, bytes int32) {
	st.undoCell = append(st.undoCell, cell)
	st.undoByte = append(st.undoByte, bytes)
}

// subPair reverses one addPair (LIFO), retiring the pair when its
// bytes decay to zero — the dense twin of the map's delete-on-≤0.
func (st *exactState) subPair(cell, bytes int32) {
	st.pair[cell] -= bytes
	if st.pair[cell] <= 0 {
		st.pairLive[cell] = false
	}
	st.swCnt[cell]--
}

// bumpWeighted folds one addPair into the running weighted score.
func (st *exactState) bumpWeighted(cell, bytes int32) {
	if st.wt == nil {
		return
	}
	if st.wobj == TrafficWeightedMax {
		if wv := st.wt.W[cell] * int64(st.pair[cell]); wv > st.curW {
			st.curW = wv
		}
		return
	}
	st.curW += st.wt.W[cell] * int64(bytes)
}

// boundOK reports whether the current partial score can still beat the
// incumbent: the structural bound when wt is nil, and the weighted
// bound plus the structural-inflation cap otherwise. Both running
// scores are monotone under further assignments, so pruning on them is
// admissible; equality against sharedBest never prunes (see its doc).
func (st *exactState) boundOK() bool {
	if st.wt == nil {
		return (!st.haveBest || st.curMax < st.bestA) && int64(st.curMax) <= st.sharedBest.Load()
	}
	return st.curMax <= st.amaxCap &&
		(!st.haveBest || st.curW < st.bestW) &&
		st.curW <= st.sharedBest.Load()
}

// adopt offers a complete dense assignment as an incumbent, scoring it
// under the active objective (strict improvement only, preserving the
// warm-start ordering semantics).
func (st *exactState) adopt(dense []int32) {
	pt := st.ci.NewPairTable()
	a := st.ci.AssignmentAMax(dense, pt)
	if st.wt == nil {
		if !st.haveBest || a < st.bestA {
			st.bestA, st.bestSet, st.haveBest = a, dense, true
		}
		return
	}
	if a > st.amaxCap {
		return
	}
	sum, max := st.wt.Score(pt)
	if w := st.wobj.pick(sum, max); !st.haveBest || w < st.bestW {
		st.bestW, st.bestA, st.bestSet, st.haveBest = w, a, dense, true
	}
}

// incumbentScore is the value published to sharedBest.
func (st *exactState) incumbentScore() int64 {
	if st.wt == nil {
		return int64(st.bestA)
	}
	return st.bestW
}

// Solve implements Solver.
func (e Exact) Solve(g *tdg.Graph, topo *network.Topology, opts Options) (*Plan, error) {
	start := time.Now()
	if err := opts.canceled(); err != nil {
		return nil, fmt.Errorf("placement: solve canceled: %w", err)
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("placement: empty TDG")
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}
	prog := topo.ProgrammableSwitches()
	if len(prog) == 0 {
		return nil, fmt.Errorf("placement: no programmable switches")
	}
	rm := opts.resourceModel()
	ci := Compile(g, topo, rm)
	st := newExactState(ci, opts)
	st.orderIdx = make([]int32, len(order))
	st.orderReq = make([]float64, len(order))
	for i, name := range order {
		x := ci.Index[name]
		st.orderIdx[i] = x
		st.orderReq[i] = ci.Req[x]
	}
	st.cands = prog
	st.eps2 = opts.epsilon2(len(prog))
	st.maxNodes = e.MaxNodes
	st.deadline = opts.Deadline
	if st.maxNodes <= 0 {
		st.maxNodes = 4 << 20
	}
	st.sharedNodes = &atomic.Int64{}
	st.sharedBest = &atomic.Int64{}
	st.sharedBest.Store(math.MaxInt64)
	homogeneous := true
	var s0 *network.Switch
	for _, id := range prog {
		sw, err := topo.Switch(id)
		if err != nil {
			return nil, err
		}
		if s0 == nil {
			s0 = sw
		} else if sw.Stages != s0.Stages || sw.StageCapacity != s0.StageCapacity {
			homogeneous = false
		}
	}
	if opts.Traffic != nil {
		wt, werr := ci.CompileWeights(opts.Traffic)
		if werr != nil {
			return nil, fmt.Errorf("placement: %w", werr)
		}
		st.wt = wt
		st.wobj = opts.TrafficObjective
		st.bestW = math.MaxInt64
		st.amaxCap = int(^uint(0) >> 1)
	}
	// Symmetry breaking (a MAT may open only the lowest-indexed unused
	// switch) is sound only when switches are interchangeable for the
	// objective: homogeneous capacities, no latency bound, and no
	// traffic weights (weights distinguish pairs by identity).
	st.symmetry = homogeneous && opts.Epsilon1 == 0 && st.wt == nil

	// Under the weighted objective, the structural-inflation cap is
	// anchored to an unweighted greedy baseline: the weighted optimum
	// may not inflate A_max beyond AMaxSlack × the plan a structural
	// solve would ship.
	if st.wt != nil {
		baseOpts := opts
		baseOpts.Traffic = nil
		if base, err := (Greedy{}).Solve(g, topo, baseOpts); err == nil {
			st.amaxCap = opts.amaxCap(base.AMax())
			st.adopt(ci.PlanAssign(base))
		}
	}
	// Warm start with the greedy heuristic to obtain a strong incumbent
	// (the greedy itself reuses opts.Warm when set, so a warm seed
	// tightens this bound transitively).
	if warm, err := (Greedy{}).Solve(g, topo, opts); err == nil {
		st.adopt(ci.PlanAssign(warm))
	}
	// Seed opts.Warm directly as well: the contract is that a
	// warm-started "Optimal" never reports worse than its seed, even
	// when the heuristic errors out (or lands above the seed).
	if assign, ok := warmSeed(g, topo, opts); ok {
		st.adopt(ci.DenseAssign(assign))
	}
	if st.haveBest {
		st.sharedBest.Store(st.incumbentScore())
	}

	if workers := opts.workers(); workers > 1 && len(st.orderIdx) > 1 {
		searchParallel(st, workers)
	} else {
		st.dfs(0)
	}

	if !st.haveBest {
		if st.capped {
			return nil, fmt.Errorf("placement: exact search hit its limit with no feasible plan")
		}
		return nil, fmt.Errorf("placement: no feasible deployment exists")
	}

	plan, err := e.materialize(st)
	if err != nil {
		return nil, err
	}
	plan.SolverName = e.Name()
	plan.SolveTime = time.Since(start)
	plan.Proven = !st.capped
	return finishPlan(plan, opts)
}

// dfs explores assignments of orderIdx[i:].
func (st *exactState) dfs(i int) {
	total := st.sharedNodes.Add(1)
	st.localNodes++
	if st.capped {
		return
	}
	if total >= int64(st.maxNodes) {
		st.capped = true
		return
	}
	if st.localNodes%1024 == 0 {
		if !st.deadline.IsZero() && time.Now().After(st.deadline) {
			st.capped = true
			return
		}
		select {
		case <-st.opts.done():
			st.capped = true
			return
		default:
		}
	}
	if i == len(st.orderIdx) {
		st.evaluateLeaf()
		return
	}
	x := st.orderIdx[i]
	req := st.orderReq[i]
	s := st.ci.S

	usedHighest := -1
	if st.symmetry {
		//hermes:hot
		for idx, u := range st.cands {
			if st.load[u] > 0 {
				usedHighest = idx
			}
		}
	}
	//hermes:hot
	for idx, u := range st.cands {
		ui := int32(u)
		// Symmetry: only the first unused switch may be opened (with no
		// switches in use yet that is candidate 0).
		if st.symmetry && st.load[u] == 0 && idx > usedHighest+1 {
			continue
		}
		if st.load[u]+req > st.ci.Caps[u]+1e-9 {
			continue
		}
		newSwitch := st.load[u] == 0
		if newSwitch && st.distinct+1 > st.eps2 {
			continue
		}
		// Incremental pair bytes and cycle check over in-edges, with a
		// frame on the shared undo stack.
		base := len(st.undoCell)
		prevMax := st.curMax
		prevW := st.curW
		ok := true
		for _, ei := range st.ci.In[x] {
			pu := st.assign[st.ci.EdgeFrom[ei]]
			if pu < 0 || pu == ui {
				continue
			}
			if st.reachable(ui, pu) {
				ok = false
				break
			}
			cell := pu*s + ui
			b := st.ci.EdgeBytes[ei]
			st.addPair(cell, b)
			if int(st.pair[cell]) > st.curMax {
				st.curMax = int(st.pair[cell])
			}
			st.bumpWeighted(cell, b)
			st.pushUndo(cell, b)
		}
		if ok && st.boundOK() {
			st.assign[x] = ui
			st.load[u] += req
			if newSwitch {
				st.distinct++
			}
			st.dfs(i + 1)
			st.load[u] -= req
			if newSwitch {
				st.distinct--
				st.load[u] = 0
			}
			st.assign[x] = -1
		}
		for j := len(st.undoCell) - 1; j >= base; j-- {
			st.subPair(st.undoCell[j], st.undoByte[j])
		}
		st.undoCell = st.undoCell[:base]
		st.undoByte = st.undoByte[:base]
		st.curMax = prevMax
		st.curW = prevW
		if st.capped {
			return
		}
	}
}

// frontierNode is one search subtree root awaiting exploration:
// orderIdx[:depth] is assigned in st, and path records the candidate
// indices chosen along the way so nodes can be ranked in the exact
// DFS visit order of the sequential search.
type frontierNode struct {
	st    *exactState
	depth int
	path  []int
}

// searchParallel splits the top of the DFS tree into independent
// subtree roots and explores them concurrently. Every branch runs the
// sequential dfs with a branch-local strict incumbent seeded from the
// warm start, plus the shared atomic bound for cross-branch pruning
// (strict, so equal-valued optima survive in every branch). Because
// each branch ends holding its first leaf (in its own DFS order) that
// attains its local minimum, merging the branches in DFS order with a
// strict comparison reproduces the sequential result exactly: the
// global winner is the first leaf in global DFS order attaining the
// optimal A_max. Runs that hit the node cap or deadline may explore a
// different set of nodes than the sequential search and can return a
// different (still feasible, Proven=false) incumbent.
func searchParallel(root *exactState, workers int) {
	// Expand breadth-first until there are enough subtree roots to
	// balance across the workers (or the tree is exhausted first).
	target := workers * 4
	frontier := []frontierNode{{st: root.clone(), depth: 0}}
	for len(frontier) > 0 && len(frontier) < target && frontier[0].depth < len(root.orderIdx)-1 {
		fn := frontier[0]
		frontier = frontier[1:]
		for _, ch := range fn.st.expand(fn.depth) {
			frontier = append(frontier, frontierNode{
				st:    ch.st,
				depth: fn.depth + 1,
				path:  append(append([]int(nil), fn.path...), ch.candIdx),
			})
		}
	}
	// Rank subtree roots in sequential DFS visit order: lexicographic
	// over candidate-index paths (a BFS queue interleaves levels once
	// the target is hit mid-level).
	sort.Slice(frontier, func(i, j int) bool {
		a, b := frontier[i].path, frontier[j].path
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})

	parallelFor(len(frontier), workers, func(i int) {
		frontier[i].st.dfs(frontier[i].depth)
	})

	// Merge in DFS order with a strict comparison: the first branch
	// attaining the global minimum supplies the assignment, matching
	// the sequential search's last-improvement semantics.
	for _, fn := range frontier {
		b := fn.st
		if b.capped {
			root.capped = true
		}
		better := b.haveBest && (!root.haveBest || b.bestA < root.bestA)
		if root.wt != nil {
			better = b.haveBest && (!root.haveBest || b.bestW < root.bestW)
		}
		if better {
			root.bestA = b.bestA
			root.bestW = b.bestW
			root.bestSet = b.bestSet
			root.haveBest = true
		}
	}
}

// expandedChild pairs a child state with the candidate index that
// produced it (for DFS-order ranking).
type expandedChild struct {
	st      *exactState
	candIdx int
}

// expand returns the surviving child states for assigning orderIdx[i],
// applying exactly the candidate filters of dfs (symmetry, capacity,
// ε2, switch-graph acyclicity, incumbent bound). The receiver is not
// mutated; each child is an independent clone with the assignment
// committed.
func (st *exactState) expand(i int) []expandedChild {
	x := st.orderIdx[i]
	req := st.orderReq[i]
	s := st.ci.S

	usedHighest := -1
	if st.symmetry {
		for idx, u := range st.cands {
			if st.load[u] > 0 {
				usedHighest = idx
			}
		}
	}
	var out []expandedChild
	for idx, u := range st.cands {
		ui := int32(u)
		if st.symmetry && st.load[u] == 0 && idx > usedHighest+1 {
			continue
		}
		if st.load[u]+req > st.ci.Caps[u]+1e-9 {
			continue
		}
		newSwitch := st.load[u] == 0
		if newSwitch && st.distinct+1 > st.eps2 {
			continue
		}
		ch := st.clone()
		ok := true
		for _, ei := range st.ci.In[x] {
			pu := ch.assign[st.ci.EdgeFrom[ei]]
			if pu < 0 || pu == ui {
				continue
			}
			if ch.reachable(ui, pu) {
				ok = false
				break
			}
			cell := pu*s + ui
			b := st.ci.EdgeBytes[ei]
			ch.addPair(cell, b)
			if int(ch.pair[cell]) > ch.curMax {
				ch.curMax = int(ch.pair[cell])
			}
			ch.bumpWeighted(cell, b)
		}
		if !ok || !ch.boundOK() {
			continue
		}
		ch.assign[x] = ui
		ch.load[u] += req
		if newSwitch {
			ch.distinct++
		}
		out = append(out, expandedChild{st: ch, candIdx: idx})
	}
	return out
}

// reachable reports whether dst is reachable from src in the contracted
// switch graph (swCnt rows), using the state's scratch buffers. The
// stack works through a local: the seen guard bounds it to S pushes, so
// the pre-sized scratch never grows and nothing needs writing back.
func (st *exactState) reachable(src, dst int32) bool {
	if src == dst {
		return true
	}
	s := st.ci.S
	for i := range st.seen {
		st.seen[i] = false
	}
	stack := append(st.stack[:0], src)
	st.seen[src] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		row := st.swCnt[n*s : (n+1)*s]
		//hermes:hot
		for to, cnt := range row {
			if cnt <= 0 {
				continue
			}
			if int32(to) == dst {
				return true
			}
			if !st.seen[to] {
				st.seen[to] = true
				stack = append(stack, int32(to))
			}
		}
	}
	return false
}

// evaluateLeaf validates a complete assignment and records it when it
// improves the incumbent (under the active objective).
func (st *exactState) evaluateLeaf() {
	if st.wt == nil {
		if st.haveBest && st.curMax >= st.bestA {
			return
		}
	} else if st.curMax > st.amaxCap || (st.haveBest && st.curW >= st.bestW) {
		return
	}
	// Stage-level packing per switch.
	bySwitch := map[network.SwitchID][]string{}
	for x, u := range st.assign {
		if u >= 0 {
			bySwitch[network.SwitchID(u)] = append(bySwitch[network.SwitchID(u)], st.ci.Names[x])
		}
	}
	rm := st.opts.resourceModel()
	for u, names := range bySwitch {
		sw, err := st.ci.Topo.Switch(u)
		if err != nil {
			return
		}
		if !FitsSwitch(st.ci.Graph, names, sw, rm) {
			return
		}
	}
	// ε1 bound via the dense latency table over live communicating
	// pairs (lat < 0 marks an unreachable pair).
	if st.opts.Epsilon1 > 0 {
		lat := st.ci.latencies()
		var total time.Duration
		//hermes:hot
		for _, cell := range st.active {
			if !st.pairLive[cell] {
				continue
			}
			l := lat[cell]
			if l < 0 {
				return
			}
			total += l
		}
		if total > st.opts.Epsilon1 {
			return
		}
	}
	st.bestA = st.curMax
	st.bestW = st.curW
	st.bestSet = append([]int32(nil), st.assign...)
	st.haveBest = true
	// Publish the improvement so sibling branches prune against it
	// (monotone min; equality keeps the first stored value).
	val := st.incumbentScore()
	for {
		cur := st.sharedBest.Load()
		if val >= cur || st.sharedBest.CompareAndSwap(cur, val) {
			break
		}
	}
}

// materialize turns the best assignment into a full plan with stage
// packing and routes.
func (e Exact) materialize(st *exactState) (*Plan, error) {
	plan := &Plan{
		Graph:       st.ci.Graph,
		Topo:        st.ci.Topo,
		Assignments: map[string]StagePlacement{},
	}
	bySwitch := map[network.SwitchID][]string{}
	for x, u := range st.bestSet {
		if u >= 0 {
			bySwitch[network.SwitchID(u)] = append(bySwitch[network.SwitchID(u)], st.ci.Names[x])
		}
	}
	rm := st.opts.resourceModel()
	for u, names := range bySwitch {
		sw, err := st.ci.Topo.Switch(u)
		if err != nil {
			return nil, err
		}
		placed, err := packShared(st.ci.Graph, names, sw, rm)
		if err != nil {
			return nil, fmt.Errorf("placement: materializing exact plan: %w", err)
		}
		for name, sp := range placed {
			plan.Assignments[name] = sp
		}
	}
	if err := addRoutesForCrossPairs(plan); err != nil {
		return nil, err
	}
	return plan, nil
}
