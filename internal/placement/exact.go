package placement

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/tdg"
)

// Exact is a specialized branch & bound over MAT→switch assignments
// that proves the optimal A_max on small instances. It plays the role
// of the paper's Gurobi-backed "Optimal" reference. On larger
// instances it degrades gracefully: given a Deadline (or MaxNodes) it
// returns the best incumbent found, with Proven=false — mirroring the
// paper's two-hour solver cap in Fig. 7.
type Exact struct {
	// MaxNodes caps search nodes; zero means 4e6.
	MaxNodes int
}

var _ Solver = (*Exact)(nil)

// Name implements Solver.
func (Exact) Name() string { return "Optimal" }

// exactState carries the mutable search state.
type exactState struct {
	g     *tdg.Graph
	topo  *network.Topology
	opts  Options
	order []string
	cands []network.SwitchID

	assign   map[string]network.SwitchID
	load     map[network.SwitchID]float64
	caps     map[network.SwitchID]float64
	pair     map[RouteKey]int
	curMax   int
	distinct int

	// contracted switch graph for cycle pruning.
	swAdj map[network.SwitchID]map[network.SwitchID]int

	bestA    int
	bestSet  map[string]network.SwitchID
	haveBest bool

	// localNodes paces the deadline poll; sharedNodes is the global
	// search-node counter enforcing maxNodes across every branch (and
	// doubling as the sole counter for the sequential search).
	localNodes  int
	sharedNodes *atomic.Int64
	// sharedBest publishes the best incumbent value across branches:
	// a subtree whose running pair maximum strictly exceeds it cannot
	// contain the winning leaf in any branch, so dfs prunes on it.
	// Equality never prunes — an earlier-in-DFS-order branch must still
	// reach its own copy of an equal-valued optimum for the merge
	// tie-break to match the sequential search.
	sharedBest *atomic.Int64
	maxNodes   int
	deadline   time.Time
	capped     bool

	symmetry bool
}

// clone deep-copies the mutable search state (assignment, loads, pair
// bytes, contracted switch graph); immutable inputs and the shared
// atomics are carried over by reference. bestSet is shared too: it is
// only ever replaced wholesale, never mutated in place.
func (st *exactState) clone() *exactState {
	c := *st
	c.assign = make(map[string]network.SwitchID, len(st.assign))
	for k, v := range st.assign {
		c.assign[k] = v
	}
	c.load = make(map[network.SwitchID]float64, len(st.load))
	for k, v := range st.load {
		c.load[k] = v
	}
	c.pair = make(map[RouteKey]int, len(st.pair))
	for k, v := range st.pair {
		c.pair[k] = v
	}
	c.swAdj = make(map[network.SwitchID]map[network.SwitchID]int, len(st.swAdj))
	for k, m := range st.swAdj {
		inner := make(map[network.SwitchID]int, len(m))
		for k2, v := range m {
			inner[k2] = v
		}
		c.swAdj[k] = inner
	}
	return &c
}

// Solve implements Solver.
func (e Exact) Solve(g *tdg.Graph, topo *network.Topology, opts Options) (*Plan, error) {
	start := time.Now()
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("placement: empty TDG")
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}
	prog := topo.ProgrammableSwitches()
	if len(prog) == 0 {
		return nil, fmt.Errorf("placement: no programmable switches")
	}
	st := &exactState{
		g:        g,
		topo:     topo,
		opts:     opts,
		order:    order,
		cands:    prog,
		assign:   map[string]network.SwitchID{},
		load:     map[network.SwitchID]float64{},
		caps:     map[network.SwitchID]float64{},
		pair:     map[RouteKey]int{},
		swAdj:    map[network.SwitchID]map[network.SwitchID]int{},
		bestA:    int(^uint(0) >> 1), // max int
		maxNodes: e.MaxNodes,
		deadline: opts.Deadline,
	}
	if st.maxNodes <= 0 {
		st.maxNodes = 4 << 20
	}
	st.sharedNodes = &atomic.Int64{}
	st.sharedBest = &atomic.Int64{}
	st.sharedBest.Store(math.MaxInt64)
	homogeneous := true
	var s0 *network.Switch
	for _, id := range prog {
		sw, err := topo.Switch(id)
		if err != nil {
			return nil, err
		}
		st.caps[id] = sw.Capacity()
		if s0 == nil {
			s0 = sw
		} else if sw.Stages != s0.Stages || sw.StageCapacity != s0.StageCapacity {
			homogeneous = false
		}
	}
	// Symmetry breaking (a MAT may open only the lowest-indexed unused
	// switch) is sound only when switches are interchangeable for the
	// objective: homogeneous capacities and no latency bound.
	st.symmetry = homogeneous && opts.Epsilon1 == 0

	// Warm start with the greedy heuristic to obtain a strong incumbent
	// (the greedy itself reuses opts.Warm when set, so a warm seed
	// tightens this bound transitively).
	if warm, err := (Greedy{}).Solve(g, topo, opts); err == nil {
		st.bestA = warm.AMax()
		st.bestSet = map[string]network.SwitchID{}
		for name, sp := range warm.Assignments {
			st.bestSet[name] = sp.Switch
		}
		st.haveBest = true
	}
	// Seed opts.Warm directly as well: the contract is that a
	// warm-started "Optimal" never reports worse than its seed, even
	// when the heuristic errors out (or lands above the seed).
	if assign, ok := warmSeed(g, topo, opts); ok {
		if a := assignmentAMax(g, assign); !st.haveBest || a < st.bestA {
			st.bestA = a
			st.bestSet = assign
			st.haveBest = true
		}
	}
	if st.haveBest {
		st.sharedBest.Store(int64(st.bestA))
	}

	if workers := opts.workers(); workers > 1 && len(st.order) > 1 {
		searchParallel(st, workers)
	} else {
		st.dfs(0)
	}

	if !st.haveBest {
		if st.capped {
			return nil, fmt.Errorf("placement: exact search hit its limit with no feasible plan")
		}
		return nil, fmt.Errorf("placement: no feasible deployment exists")
	}

	plan, err := e.materialize(st)
	if err != nil {
		return nil, err
	}
	plan.SolverName = e.Name()
	plan.SolveTime = time.Since(start)
	plan.Proven = !st.capped
	return finishPlan(plan, opts)
}

// dfs explores assignments of order[i:].
func (st *exactState) dfs(i int) {
	total := st.sharedNodes.Add(1)
	st.localNodes++
	if st.capped {
		return
	}
	if total >= int64(st.maxNodes) || (!st.deadline.IsZero() && st.localNodes%1024 == 0 && time.Now().After(st.deadline)) {
		st.capped = true
		return
	}
	if i == len(st.order) {
		st.evaluateLeaf()
		return
	}
	name := st.order[i]
	node, _ := st.g.Node(name)
	req := st.opts.resourceModel().Requirement(node.MAT)

	eps2 := st.opts.epsilon2(len(st.cands))

	usedHighest := -1
	if st.symmetry {
		for idx, u := range st.cands {
			if st.load[u] > 0 {
				usedHighest = idx
			}
		}
	}
	for idx, u := range st.cands {
		// Symmetry: only the first unused switch may be opened (with no
		// switches in use yet that is candidate 0).
		if st.symmetry && st.load[u] == 0 && idx > usedHighest+1 {
			continue
		}
		if st.load[u]+req > st.caps[u]+1e-9 {
			continue
		}
		newSwitch := st.load[u] == 0
		if newSwitch && st.distinct+1 > eps2 {
			continue
		}
		// Incremental pair bytes and cycle check over in-edges, with an
		// explicit undo log.
		type undo struct {
			key   RouteKey
			bytes int
		}
		var log []undo
		prevMax := st.curMax
		ok := true
		for _, e := range st.g.InEdges(name) {
			pu, assigned := st.assign[e.From]
			if !assigned || pu == u {
				continue
			}
			if st.reachable(u, pu) {
				ok = false
				break
			}
			key := RouteKey{From: pu, To: u}
			st.pair[key] += e.MetadataBytes
			if st.pair[key] > st.curMax {
				st.curMax = st.pair[key]
			}
			if st.swAdj[pu] == nil {
				st.swAdj[pu] = map[network.SwitchID]int{}
			}
			st.swAdj[pu][u]++
			log = append(log, undo{key: key, bytes: e.MetadataBytes})
		}
		if ok && (!st.haveBest || st.curMax < st.bestA) && int64(st.curMax) <= st.sharedBest.Load() {
			st.assign[name] = u
			st.load[u] += req
			if newSwitch {
				st.distinct++
			}
			st.dfs(i + 1)
			st.load[u] -= req
			if newSwitch {
				st.distinct--
				st.load[u] = 0
			}
			delete(st.assign, name)
		}
		for j := len(log) - 1; j >= 0; j-- {
			en := log[j]
			st.pair[en.key] -= en.bytes
			if st.pair[en.key] <= 0 {
				delete(st.pair, en.key)
			}
			st.swAdj[en.key.From][en.key.To]--
			if st.swAdj[en.key.From][en.key.To] <= 0 {
				delete(st.swAdj[en.key.From], en.key.To)
			}
		}
		st.curMax = prevMax
		if st.capped {
			return
		}
	}
}

// frontierNode is one search subtree root awaiting exploration:
// order[:depth] is assigned in st, and path records the candidate
// indices chosen along the way so nodes can be ranked in the exact
// DFS visit order of the sequential search.
type frontierNode struct {
	st    *exactState
	depth int
	path  []int
}

// searchParallel splits the top of the DFS tree into independent
// subtree roots and explores them concurrently. Every branch runs the
// sequential dfs with a branch-local strict incumbent seeded from the
// warm start, plus the shared atomic bound for cross-branch pruning
// (strict, so equal-valued optima survive in every branch). Because
// each branch ends holding its first leaf (in its own DFS order) that
// attains its local minimum, merging the branches in DFS order with a
// strict comparison reproduces the sequential result exactly: the
// global winner is the first leaf in global DFS order attaining the
// optimal A_max. Runs that hit the node cap or deadline may explore a
// different set of nodes than the sequential search and can return a
// different (still feasible, Proven=false) incumbent.
func searchParallel(root *exactState, workers int) {
	// Expand breadth-first until there are enough subtree roots to
	// balance across the workers (or the tree is exhausted first).
	target := workers * 4
	frontier := []frontierNode{{st: root.clone(), depth: 0}}
	for len(frontier) > 0 && len(frontier) < target && frontier[0].depth < len(root.order)-1 {
		fn := frontier[0]
		frontier = frontier[1:]
		for _, ch := range fn.st.expand(fn.depth) {
			frontier = append(frontier, frontierNode{
				st:    ch.st,
				depth: fn.depth + 1,
				path:  append(append([]int(nil), fn.path...), ch.candIdx),
			})
		}
	}
	// Rank subtree roots in sequential DFS visit order: lexicographic
	// over candidate-index paths (a BFS queue interleaves levels once
	// the target is hit mid-level).
	sort.Slice(frontier, func(i, j int) bool {
		a, b := frontier[i].path, frontier[j].path
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})

	parallelFor(len(frontier), workers, func(i int) {
		frontier[i].st.dfs(frontier[i].depth)
	})

	// Merge in DFS order with a strict comparison: the first branch
	// attaining the global minimum supplies the assignment, matching
	// the sequential search's last-improvement semantics.
	for _, fn := range frontier {
		b := fn.st
		if b.capped {
			root.capped = true
		}
		if b.haveBest && (!root.haveBest || b.bestA < root.bestA) {
			root.bestA = b.bestA
			root.bestSet = b.bestSet
			root.haveBest = true
		}
	}
}

// expandedChild pairs a child state with the candidate index that
// produced it (for DFS-order ranking).
type expandedChild struct {
	st      *exactState
	candIdx int
}

// expand returns the surviving child states for assigning order[i],
// applying exactly the candidate filters of dfs (symmetry, capacity,
// ε2, switch-graph acyclicity, incumbent bound). The receiver is not
// mutated; each child is an independent clone with the assignment
// committed.
func (st *exactState) expand(i int) []expandedChild {
	name := st.order[i]
	node, _ := st.g.Node(name)
	req := st.opts.resourceModel().Requirement(node.MAT)
	eps2 := st.opts.epsilon2(len(st.cands))

	usedHighest := -1
	if st.symmetry {
		for idx, u := range st.cands {
			if st.load[u] > 0 {
				usedHighest = idx
			}
		}
	}
	var out []expandedChild
	for idx, u := range st.cands {
		if st.symmetry && st.load[u] == 0 && idx > usedHighest+1 {
			continue
		}
		if st.load[u]+req > st.caps[u]+1e-9 {
			continue
		}
		newSwitch := st.load[u] == 0
		if newSwitch && st.distinct+1 > eps2 {
			continue
		}
		ch := st.clone()
		ok := true
		for _, e := range st.g.InEdges(name) {
			pu, assigned := ch.assign[e.From]
			if !assigned || pu == u {
				continue
			}
			if ch.reachable(u, pu) {
				ok = false
				break
			}
			key := RouteKey{From: pu, To: u}
			ch.pair[key] += e.MetadataBytes
			if ch.pair[key] > ch.curMax {
				ch.curMax = ch.pair[key]
			}
			if ch.swAdj[pu] == nil {
				ch.swAdj[pu] = map[network.SwitchID]int{}
			}
			ch.swAdj[pu][u]++
		}
		if !ok || (ch.haveBest && ch.curMax >= ch.bestA) {
			continue
		}
		ch.assign[name] = u
		ch.load[u] += req
		if newSwitch {
			ch.distinct++
		}
		out = append(out, expandedChild{st: ch, candIdx: idx})
	}
	return out
}

// reachable reports whether dst is reachable from src in the contracted
// switch graph.
func (st *exactState) reachable(src, dst network.SwitchID) bool {
	if src == dst {
		return true
	}
	stack := []network.SwitchID{src}
	seen := map[network.SwitchID]bool{src: true}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for to := range st.swAdj[n] {
			if to == dst {
				return true
			}
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return false
}

// evaluateLeaf validates a complete assignment and records it when it
// improves the incumbent.
func (st *exactState) evaluateLeaf() {
	if st.haveBest && st.curMax >= st.bestA {
		return
	}
	// Stage-level packing per switch.
	bySwitch := map[network.SwitchID][]string{}
	for name, u := range st.assign {
		bySwitch[u] = append(bySwitch[u], name)
	}
	rm := st.opts.resourceModel()
	for u, names := range bySwitch {
		sw, err := st.topo.Switch(u)
		if err != nil {
			return
		}
		if !FitsSwitch(st.g, names, sw, rm) {
			return
		}
	}
	// ε1 bound via shortest paths between communicating pairs.
	if st.opts.Epsilon1 > 0 {
		var total time.Duration
		for key := range st.pair {
			p, err := st.topo.ShortestPath(key.From, key.To)
			if err != nil {
				return
			}
			total += p.Latency
		}
		if total > st.opts.Epsilon1 {
			return
		}
	}
	st.bestA = st.curMax
	st.bestSet = map[string]network.SwitchID{}
	for name, u := range st.assign {
		st.bestSet[name] = u
	}
	st.haveBest = true
	// Publish the improvement so sibling branches prune against it
	// (monotone min; equality keeps the first stored value).
	for {
		cur := st.sharedBest.Load()
		if int64(st.bestA) >= cur || st.sharedBest.CompareAndSwap(cur, int64(st.bestA)) {
			break
		}
	}
}

// materialize turns the best assignment into a full plan with stage
// packing and routes.
func (e Exact) materialize(st *exactState) (*Plan, error) {
	plan := &Plan{
		Graph:       st.g,
		Topo:        st.topo,
		Assignments: map[string]StagePlacement{},
	}
	bySwitch := map[network.SwitchID][]string{}
	for name, u := range st.bestSet {
		bySwitch[u] = append(bySwitch[u], name)
	}
	rm := st.opts.resourceModel()
	for u, names := range bySwitch {
		sw, err := st.topo.Switch(u)
		if err != nil {
			return nil, err
		}
		placed, err := PackStages(st.g, names, sw, rm)
		if err != nil {
			return nil, fmt.Errorf("placement: materializing exact plan: %w", err)
		}
		for name, sp := range placed {
			plan.Assignments[name] = sp
		}
	}
	if err := addRoutesForCrossPairs(plan); err != nil {
		return nil, err
	}
	return plan, nil
}
