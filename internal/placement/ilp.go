package placement

import (
	"fmt"
	"math"
	"time"

	"github.com/hermes-net/hermes/internal/milp"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// ILP solves problem P#1 through the literal MILP encoding, using the
// internal branch-and-bound solver in place of Gurobi. The decision
// variable x(a,i,u) is aggregated per switch into L(a,u) — the paper's
// own edge constraints (Eq. 7) are stated over L — and the stage-level
// split is recovered afterwards with the same packer the other solvers
// use. Products L(a,u)·L(b,v) in Eq. 1 are linearized with standard
// big-M-free z variables (z ≥ L(a,u) + L(b,v) − 1).
//
// When the packer or the switch-ordering check rejects an ILP optimum
// (the MILP is a relaxation of the stage-granular problem), a no-good
// cut is added and the model re-solved, up to a bounded number of
// rounds.
type ILP struct {
	// MaxNoGoodCuts bounds the repair loop; zero means 16.
	MaxNoGoodCuts int
	// Objective selects what the MILP minimizes; zero value is
	// ObjBytes (Hermes' A_max). The other objectives realize the
	// ILP-based comparison frameworks, which share the constraint set
	// but optimize performance- or resource-oriented goals.
	Objective ILPObjective
	// DisplayName overrides Name() in reports (e.g. "MS-ILP").
	DisplayName string
}

// ILPObjective enumerates the supported MILP objectives.
type ILPObjective int

const (
	// ObjBytes minimizes A_max (Hermes, Eq. 1).
	ObjBytes ILPObjective = iota
	// ObjLatency minimizes the summed shortest-path latency between
	// communicating switch pairs (SPEED/MTP-style performance focus).
	ObjLatency
	// ObjSwitches minimizes the number of occupied switches
	// (Min-Stage/Flightplan-style consolidation).
	ObjSwitches
	// ObjBalance minimizes the maximum per-switch load (Sonata-style
	// headroom balancing).
	ObjBalance
)

// String names the objective.
func (o ILPObjective) String() string {
	switch o {
	case ObjBytes:
		return "bytes"
	case ObjLatency:
		return "latency"
	case ObjSwitches:
		return "switches"
	case ObjBalance:
		return "balance"
	default:
		return fmt.Sprintf("ILPObjective(%d)", int(o))
	}
}

var _ Solver = (*ILP)(nil)

// Name implements Solver.
func (s ILP) Name() string {
	if s.DisplayName != "" {
		return s.DisplayName
	}
	if s.Objective == ObjBytes {
		return "Hermes-ILP"
	}
	return "ILP-" + s.Objective.String()
}

// EstimateVars predicts the MILP size for an instance: the L, z, and
// auxiliary variable counts. Callers use it to decide whether a solve
// can finish within a deadline (the paper's Fig. 7 caps runs at two
// hours; we cap by estimated size plus wall clock).
func EstimateVars(g *tdg.Graph, topo *network.Topology) int {
	prog := len(topo.ProgrammableSwitches())
	edges := g.NumEdges()
	return g.NumNodes()*prog + edges*prog*(prog-1) + 2*prog + 2
}

// Solve implements Solver.
func (s ILP) Solve(g *tdg.Graph, topo *network.Topology, opts Options) (*Plan, error) {
	start := time.Now()
	if err := opts.canceled(); err != nil {
		return nil, fmt.Errorf("placement: solve canceled: %w", err)
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("placement: empty TDG")
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}
	prog := topo.ProgrammableSwitches()
	if len(prog) == 0 {
		return nil, fmt.Errorf("placement: no programmable switches")
	}
	maxCuts := s.MaxNoGoodCuts
	if maxCuts <= 0 {
		maxCuts = 16
	}
	rm := opts.resourceModel()
	nodes := g.NodeNames()
	edges := g.Edges()
	eps2 := opts.epsilon2(len(prog))

	m := milp.NewModel()
	// L(a,u).
	lvar := map[string]map[network.SwitchID]milp.Var{}
	for _, a := range nodes {
		lvar[a] = map[network.SwitchID]milp.Var{}
		assign := milp.Expr{}
		for _, u := range prog {
			v, err := m.AddBinaryVar(fmt.Sprintf("L(%s,%d)", a, u), 0)
			if err != nil {
				return nil, err
			}
			lvar[a][u] = v
			assign = assign.Plus(v, 1)
		}
		// Eq. 6 (as equality: exactly one host).
		if err := m.AddConstraint("deploy:"+a, assign, milp.EQ, 1); err != nil {
			return nil, err
		}
	}
	// A_max: the objective for ObjBytes, otherwise a free diagnostic.
	amaxCoeff := 0.0
	if s.Objective == ObjBytes {
		amaxCoeff = 1
	}
	amax, err := m.AddVar("A_max", 0, math.Inf(1), amaxCoeff)
	if err != nil {
		return nil, err
	}
	// z(e,u,v) with linking constraints, and per-pair byte sums.
	needAllZ := opts.Epsilon1 > 0 || s.Objective == ObjLatency
	pairSum := map[RouteKey]milp.Expr{}
	pairInd := map[RouteKey][]milp.Var{}
	for ei, e := range edges {
		if e.MetadataBytes == 0 && !needAllZ {
			continue // zero-cost edges cannot affect A_max nor latency
		}
		for _, u := range prog {
			for _, v := range prog {
				if u == v {
					continue
				}
				z, err := m.AddVar(fmt.Sprintf("z(%d,%d,%d)", ei, u, v), 0, 1, 0)
				if err != nil {
					return nil, err
				}
				// z ≥ L(a,u) + L(b,v) − 1.
				link := milp.Expr{}.Plus(lvar[e.From][u], 1).Plus(lvar[e.To][v], 1).Plus(z, -1)
				if err := m.AddConstraint("link", link, milp.LE, 1); err != nil {
					return nil, err
				}
				key := RouteKey{From: u, To: v}
				pairSum[key] = pairSum[key].Plus(z, float64(e.MetadataBytes))
				pairInd[key] = append(pairInd[key], z)
			}
		}
	}
	// Eq. 1: A_max dominates every pair sum.
	for key, expr := range pairSum {
		c := expr.Plus(amax, -1)
		if err := m.AddConstraint(fmt.Sprintf("amax(%d,%d)", key.From, key.To), c, milp.LE, 0); err != nil {
			return nil, err
		}
	}
	// Eq. 9 aggregated per switch: Σ R(a)·L(a,u) ≤ capacity(u).
	for _, u := range prog {
		sw, err := topo.Switch(u)
		if err != nil {
			return nil, err
		}
		capc := milp.Expr{}
		for _, a := range nodes {
			node, _ := g.Node(a)
			capc = capc.Plus(lvar[a][u], rm.Requirement(node.MAT))
		}
		if err := m.AddConstraint(fmt.Sprintf("cap(%d)", u), capc, milp.LE, sw.Capacity()); err != nil {
			return nil, err
		}
	}
	// Eq. 5: occupancy indicators o(u) ≥ L(a,u); built when the bound
	// binds or when the objective is switch minimization.
	if eps2 < len(prog) || s.Objective == ObjSwitches {
		occCoeff := 0.0
		if s.Objective == ObjSwitches {
			occCoeff = 1
		}
		occ := milp.Expr{}
		for _, u := range prog {
			o, err := m.AddBinaryVar(fmt.Sprintf("o(%d)", u), occCoeff)
			if err != nil {
				return nil, err
			}
			for _, a := range nodes {
				c := milp.Expr{}.Plus(lvar[a][u], 1).Plus(o, -1)
				if err := m.AddConstraint("occ-link", c, milp.LE, 0); err != nil {
					return nil, err
				}
			}
			occ = occ.Plus(o, 1)
		}
		if eps2 < len(prog) {
			if err := m.AddConstraint("eps2", occ, milp.LE, float64(eps2)); err != nil {
				return nil, err
			}
		}
	}
	// ObjBalance: minimize the maximum per-switch load.
	if s.Objective == ObjBalance {
		lmax, err := m.AddVar("L_max", 0, math.Inf(1), 1)
		if err != nil {
			return nil, err
		}
		for _, u := range prog {
			load := milp.Expr{}
			for _, a := range nodes {
				node, _ := g.Node(a)
				load = load.Plus(lvar[a][u], rm.Requirement(node.MAT))
			}
			load = load.Plus(lmax, -1)
			if err := m.AddConstraint(fmt.Sprintf("bal(%d)", u), load, milp.LE, 0); err != nil {
				return nil, err
			}
		}
	}
	// Pair-communication indicators c(u,v): Eq. 4's latency bound and
	// the ObjLatency objective both price them.
	if opts.Epsilon1 > 0 || s.Objective == ObjLatency {
		latCoeff := 0.0
		if s.Objective == ObjLatency {
			// Scale nanoseconds down so coefficients stay well
			// conditioned for the simplex.
			latCoeff = 1e-6
		}
		lat := milp.Expr{}
		for key, zs := range pairInd {
			sp, err := topo.ShortestPath(key.From, key.To)
			if err != nil {
				return nil, fmt.Errorf("placement: pair latency requires connectivity: %w", err)
			}
			c, err := m.AddVar(fmt.Sprintf("c(%d,%d)", key.From, key.To), 0, 1, latCoeff*float64(sp.Latency))
			if err != nil {
				return nil, err
			}
			for _, z := range zs {
				link := milp.Expr{}.Plus(z, 1).Plus(c, -1)
				if err := m.AddConstraint("lat-link", link, milp.LE, 0); err != nil {
					return nil, err
				}
			}
			lat = lat.Plus(c, float64(sp.Latency))
		}
		if opts.Epsilon1 > 0 {
			if err := m.AddConstraint("eps1", lat, milp.LE, float64(opts.Epsilon1)); err != nil {
				return nil, err
			}
		}
	}

	// Solve, repairing stage-infeasible optima with no-good cuts.
	proven := true
	for cut := 0; cut <= maxCuts; cut++ {
		sol := m.Solve(milp.Options{Deadline: opts.Deadline, Cancel: opts.done()})
		switch sol.Status {
		case milp.StatusOptimal:
		case milp.StatusFeasible:
			proven = false
		case milp.StatusDeadline:
			return nil, fmt.Errorf("placement: ILP hit deadline with no feasible plan")
		default:
			return nil, fmt.Errorf("placement: ILP %v", sol.Status)
		}
		assign := map[string]network.SwitchID{}
		for _, a := range nodes {
			for _, u := range prog {
				if sol.Int(lvar[a][u]) == 1 {
					assign[a] = u
					break
				}
			}
			if _, ok := assign[a]; !ok {
				return nil, fmt.Errorf("placement: ILP left MAT %q unassigned", a)
			}
		}
		plan, err := materializeAssignment(g, topo, assign, rm)
		if err == nil {
			if _, derr := plan.SwitchOrder(); derr == nil {
				plan.SolverName = s.Name()
				plan.SolveTime = time.Since(start)
				plan.Proven = proven
				return finishPlan(plan, opts)
			}
		}
		// No-good cut: forbid this exact assignment.
		ng := milp.Expr{}
		for a, u := range assign {
			ng = ng.Plus(lvar[a][u], 1)
		}
		if err := m.AddConstraint(fmt.Sprintf("nogood%d", cut), ng, milp.LE, float64(len(nodes)-1)); err != nil {
			return nil, err
		}
		proven = false
	}
	return nil, fmt.Errorf("placement: ILP optima kept failing stage packing after %d cuts", maxCuts)
}

// materializeAssignment packs a switch-level assignment into stages and
// adds routes.
func materializeAssignment(g *tdg.Graph, topo *network.Topology, assign map[string]network.SwitchID, rm program.ResourceModel) (*Plan, error) {
	plan, err := packAssignment(g, topo, assign, rm)
	if err != nil {
		return nil, err
	}
	if err := addRoutesForCrossPairs(plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// packAssignment is materializeAssignment minus the routes: per-switch
// stage packing of a complete MAT→switch assignment. The regional
// replan splits the two so it can reuse the pre-drain plan's routes
// instead of re-running shortest paths for every surviving pair.
func packAssignment(g *tdg.Graph, topo *network.Topology, assign map[string]network.SwitchID, rm program.ResourceModel) (*Plan, error) {
	plan := &Plan{
		Graph:       g,
		Topo:        topo,
		Assignments: map[string]StagePlacement{},
	}
	bySwitch := map[network.SwitchID][]string{}
	for name, u := range assign {
		bySwitch[u] = append(bySwitch[u], name)
	}
	for u, names := range bySwitch {
		sw, err := topo.Switch(u)
		if err != nil {
			return nil, err
		}
		placed, err := packShared(g, names, sw, rm)
		if err != nil {
			return nil, fmt.Errorf("placement: materializing assignment: %w", err)
		}
		for name, sp := range placed {
			plan.Assignments[name] = sp
		}
	}
	return plan, nil
}
