// Region-local incremental replanning (DESIGN.md §14): the sharded
// solver folded into the churn path. With a topology Partition on the
// replan options, the dirty set (displaced MATs plus the bounded TDG
// frontier) is mapped onto the regions it intersects and each dirty
// region is repaired concurrently on a compact per-region compiled
// instance — the region's live programmable switches plus the frozen
// halo hosts its dirty MATs communicate with, so the PR 4 kernels run
// on tables sized by the region, never S². Escalation is layered:
//
//  1. Per-region greedy re-placement + polish (this file). A region
//     that cannot host its displaced MATs retries once with the 2-hop
//     widened candidate set (its partition neighbors), letting a MAT
//     cross more than one cut.
//  2. A merged plan that would fail the quality gate runs a bounded
//     overlapping-region boundary exchange (RegionExchangeHook,
//     registered by internal/placement/shard) before being re-gated.
//  3. Only then does ReplanAuto fall back to the caller's solver — a
//     sharded cold re-solve when the caller passes ShardedGreedy.
//
// Regions repair independently against the pre-repair snapshot (the
// same approximation the sharded solver's regional solves make); the
// merged plan passes the full gate stack (Validate, quality ratio,
// lint, equiv) exactly like the whole-topology repair.
package placement

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// RegionExchangeStats summarizes one overlapping-region boundary
// exchange run (the escalation the regional repair invokes through
// RegionExchangeHook).
type RegionExchangeStats struct {
	// Hosts is the compacted host-space size the exchange ran in.
	Hosts int
	// Rounds and Moves count executed rounds and accepted migrations.
	Rounds, Moves int
	// AMaxBefore and AMaxAfter bracket the exchange (Eq. 1 bytes).
	AMaxBefore, AMaxAfter int
}

// RegionExchangeHook, when registered, runs the bounded
// overlapping-region boundary exchange over a merged assignment,
// mutating it in place: MATs migrate across region cuts — up to
// `overlap` cuts per round via the region-neighborhood target sets —
// while the global (A_max, cross-bytes) objective strictly improves.
// internal/placement/shard registers the implementation from its
// init, mirroring PlanLintHook/PlanEquivHook (the variable indirection
// avoids the shard→placement import cycle). With no hook registered
// the regional repair skips the escalation and goes straight to the
// gate.
var RegionExchangeHook func(g *tdg.Graph, topo *network.Topology, part *network.Partition,
	assign map[string]network.SwitchID, opts Options, rounds, overlap int) (RegionExchangeStats, error)

// Escalation budget: the exchange runs few rounds (it only has to
// shave the quality overshoot, not reconcile a cold merge) with the
// 2-hop overlapping neighborhoods.
const (
	escalationRounds  = 4
	escalationOverlap = 2
)

// regionSpares bounds the empty candidate switches admitted per region
// repair. Candidate hosts are the regions' switches that already hold
// MATs plus this many unoccupied spares (lowest IDs first): the greedy
// scores favor co-location so empty switches beyond a safety pool
// almost never win, and the compiled tables are U²-sized — admitting
// every empty switch of a 300-switch region would make the scratch
// allocations, not the repair, the replan's critical path. A region
// whose displaced MATs overflow the pool reports errRegionInfeasible
// and retries widened, exactly like any other capacity shortfall.
const regionSpares = 32

// errRegionInfeasible marks a region-local repair that cannot place a
// displaced MAT inside its candidate set; the caller widens the set or
// falls back.
var errRegionInfeasible = errors.New("region repair infeasible")

// repairRegional is the region-local delta path (the counterpart of
// repairPlan when ReplanOptions.Partition is set). It returns the
// repaired plan and the dirty-set size, or an error describing why the
// regional repair cannot stand.
func repairRegional(old *Plan, topo *network.Topology, ropts ReplanOptions, drainedSet map[network.SwitchID]bool, rep *ReplanReport) (*Plan, int, error) {
	g := old.Graph
	rm := ropts.resourceModel()
	part := ropts.Partition

	phase := time.Now()
	displaced, dirty := dirtySets(old, topo, ropts, drainedSet)
	rep.Phases.Dirty = time.Since(phase)
	if len(displaced) == 0 {
		// Nothing hosted on the drained switches; re-materialize (routes
		// may change) and gate.
		plan, err := materializeRegional(g, topo, assignmentOf(old), rm, old, ropts)
		if err != nil {
			return nil, 0, err
		}
		return finishRepairTimed(plan, old, ropts, 0, rep)
	}

	// Map the dirty set onto the regions it intersects: every dirty MAT
	// belongs to the region of its pre-drain host, so each MAT is
	// movable in exactly one region's repair and the merge is disjoint.
	regionDirty := map[int][]string{}
	for name := range dirty {
		host := old.Assignments[name].Switch
		r := part.RegionOf(host)
		if r < 0 {
			return nil, len(dirty), fmt.Errorf("partition does not cover switch %d", host)
		}
		regionDirty[r] = append(regionDirty[r], name)
	}
	regions := make([]int, 0, len(regionDirty))
	for r := range regionDirty {
		sort.Strings(regionDirty[r])
		regions = append(regions, r)
	}
	sort.Ints(regions)
	rep.UsedRegional = true
	rep.RegionsTouched = regions

	// Surviving global assignment: everything but the displaced MATs
	// keeps its switch. Read-only while the region repairs run. used
	// records which switches still hold MATs — the region repairs build
	// their candidate sets around it.
	assign := make(map[string]network.SwitchID, g.NumNodes())
	used := make(map[network.SwitchID]bool, len(old.Assignments)/4+1)
	for name, sp := range old.Assignments {
		if !displaced[name] {
			assign[name] = sp.Switch
			used[sp.Switch] = true
		}
	}

	// Under a traffic matrix every region compacts the same global pair
	// rates (routed once here, on the real topology — the per-region
	// pseudo-topologies are links-free).
	var rates []float64
	if ropts.Traffic != nil {
		var err error
		rates, err = ropts.Traffic.PairRates(topo)
		if err != nil {
			return nil, len(dirty), err
		}
	}

	nbr := regionAdjacency(part)
	phase = time.Now()
	results := make([]map[string]network.SwitchID, len(regions))
	errs := make([]error, len(regions))
	widened := make([]bool, len(regions))
	parallelForShard(len(regions), ropts.workers(), func(_, i int) {
		r := regions[i]
		res, err := repairOneRegion(g, topo, part, assign, used, regionDirty[r], displaced, ropts, rm, rates, []int{r})
		if errors.Is(err, errRegionInfeasible) {
			// Overlapping-region escalation: admit candidates from the
			// 2-hop region neighborhood so a displaced MAT may land
			// across more than one cut.
			widened[i] = true
			res, err = repairOneRegion(g, topo, part, assign, used, regionDirty[r], displaced, ropts, rm, rates,
				append([]int{r}, nbr[r]...))
		}
		results[i], errs[i] = res, err
	})
	rep.Phases.Regions = time.Since(phase)
	for i, err := range errs {
		if err != nil {
			return nil, len(dirty), fmt.Errorf("region %d: %w", regions[i], err)
		}
		if widened[i] {
			rep.RegionsWidened++
		}
	}
	for _, res := range results {
		for name, u := range res {
			assign[name] = u
		}
	}

	// Each region checked acyclicity on its instance's contracted
	// subgraph; a cycle threading placed MATs through hosts outside the
	// instance is invisible there, so re-prove the invariant globally
	// (O(E) Kahn over the used switches) before standing the plan up.
	if !assignmentAcyclicGlobal(g, assign) {
		return nil, len(dirty), fmt.Errorf("regional repair left a cyclic contracted switch graph")
	}

	plan, err := materializeRegional(g, topo, assign, rm, old, ropts)
	if err != nil {
		return nil, len(dirty), err
	}
	rep.Phases.Regions = time.Since(phase) // fan-out + merge + materialize

	// Bounded overlapping-region exchange: the escalation between the
	// per-region repairs and the full-solve fallback. It runs only when
	// the merged plan would fail the quality gate — the same
	// reconciliation a sharded cold solve ends with, aimed at merges
	// whose drain shifted the global bottleneck outside the dirty
	// regions. Feasibility is preserved throughout (the exchange
	// migrates only already-placed MATs under the same
	// capacity/acyclicity checks); a plan still past the gate after the
	// exchange falls back to the full solve via finishRepair.
	if ratio := ropts.qualityRatio(); ratio > 0 && RegionExchangeHook != nil {
		if oldA := old.AMax(); oldA > 0 && float64(plan.AMax()) > ratio*float64(oldA) {
			exStart := time.Now()
			st, exErr := RegionExchangeHook(g, topo, part, assign, ropts.Options, escalationRounds, escalationOverlap)
			rep.Phases.Exchange = time.Since(exStart)
			if exErr == nil && st.Moves > 0 {
				rep.ExchangeRounds, rep.ExchangeMoves = st.Rounds, st.Moves
				if plan2, mErr := materializeRegional(g, topo, assign, rm, old, ropts); mErr == nil {
					plan = plan2
				}
			}
		}
	}
	return finishRepairTimed(plan, old, ropts, len(dirty), rep)
}

// materializeRegional packs the merged assignment and fills in routes,
// reusing the pre-drain plan's routes when they are provably still
// valid: the replan ran against a clone of the old plan's own topology
// (no ReplanOptions.Topology override) and neither side carries a fault
// overlay, so the link graph and transit latencies routing depends on
// are unchanged — a drained switch keeps forwarding (the contract
// Replan documents), it only stops hosting. Only the pairs the repair
// created (moved MATs on new hosts) are routed, in one batched oracle
// query against the old topology, whose SSSP cache is already warm from
// the base solve. Any condition outside that window falls back to the
// full route recompute.
func materializeRegional(g *tdg.Graph, topo *network.Topology, assign map[string]network.SwitchID,
	rm program.ResourceModel, old *Plan, ropts ReplanOptions) (*Plan, error) {
	if ropts.Topology != nil || len(old.Routes) == 0 || old.Topo.HasFaults() || topo.HasFaults() {
		return materializeAssignment(g, topo, assign, rm)
	}
	plan, err := packAssignment(g, topo, assign, rm)
	if err != nil {
		return nil, err
	}
	bytes := plan.PairBytes()
	plan.Routes = make(map[RouteKey]network.Path, len(bytes))
	var keys []RouteKey
	var pairs [][2]network.SwitchID
	for key := range bytes {
		if p, ok := old.Routes[key]; ok {
			plan.Routes[key] = p
		} else {
			keys = append(keys, key)
			pairs = append(pairs, [2]network.SwitchID{key.From, key.To})
		}
	}
	if len(pairs) > 0 {
		paths, err := old.Topo.ShortestPaths(pairs)
		if err != nil {
			return nil, err
		}
		for i, key := range keys {
			plan.Routes[key] = paths[i]
		}
	}
	return plan, nil
}

// assignmentAcyclicGlobal reports whether the contracted switch graph
// of the full assignment is a DAG — the solver invariant lint restates
// as HL110. The per-region repairs prove it only on their instance
// subgraphs, so the merge re-proves it over every TDG edge.
func assignmentAcyclicGlobal(g *tdg.Graph, assign map[string]network.SwitchID) bool {
	adj := map[network.SwitchID]map[network.SwitchID]bool{}
	indeg := map[network.SwitchID]int{}
	nodes := map[network.SwitchID]bool{}
	for _, u := range assign {
		nodes[u] = true
	}
	for _, e := range g.EdgeList() {
		a, b := assign[e.From], assign[e.To]
		if a == b {
			continue
		}
		if adj[a] == nil {
			adj[a] = map[network.SwitchID]bool{}
		}
		if !adj[a][b] {
			adj[a][b] = true
			indeg[b]++
		}
	}
	queue := make([]network.SwitchID, 0, len(nodes))
	for id := range nodes {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	processed := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		for nb := range adj[id] {
			if indeg[nb]--; indeg[nb] == 0 {
				queue = append(queue, nb)
			}
		}
	}
	return processed == len(nodes)
}

// regionAdjacency returns each region's neighbor list (regions joined
// by at least one boundary link), ascending.
func regionAdjacency(part *network.Partition) [][]int {
	nbr := make([][]int, part.NumRegions())
	for _, pr := range part.AdjacentRegions() {
		nbr[pr[0]] = append(nbr[pr[0]], pr[1])
		nbr[pr[1]] = append(nbr[pr[1]], pr[0])
	}
	return nbr
}

// repairOneRegion heals one dirty region on a compact compiled
// instance. candRegions lists the regions whose live programmable
// switches may host this region's dirty MATs ({r} normally, r plus its
// partition neighbors on the widened retry); every other host the
// dirty MATs communicate with joins the instance as a frozen halo
// anchor, so each pair-byte cell a repair move can touch carries its
// true background bytes. baseAssign is read-only (regions repair
// concurrently); the returned map carries this region's dirty MATs and
// their final hosts.
func repairOneRegion(g *tdg.Graph, topo *network.Topology, part *network.Partition,
	baseAssign map[string]network.SwitchID, used map[network.SwitchID]bool,
	dirtyNames []string, displaced map[string]bool,
	ropts ReplanOptions, rm program.ResourceModel, rates []float64, candRegions []int) (map[string]network.SwitchID, error) {

	// Candidate hosts: the candidate regions' live programmable
	// switches that still hold MATs, plus up to regionSpares empty ones
	// (ascending ID — part.Region is sorted, and candRegions order is
	// deterministic).
	candSet := map[network.SwitchID]bool{}
	var hosts []network.SwitchID
	spares := 0
	for _, r := range candRegions {
		for _, id := range part.Region(r) {
			sw, err := topo.Switch(id)
			if err != nil {
				return nil, err
			}
			if !sw.Programmable || topo.SwitchIsDown(id) {
				continue
			}
			if !used[id] {
				if spares >= regionSpares {
					continue
				}
				spares++
			}
			candSet[id] = true
			hosts = append(hosts, id)
		}
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("%w: no live programmable switch in candidate regions", errRegionInfeasible)
	}

	// Halo hosts: frozen anchors — hosts of the dirty MATs' TDG peers
	// outside the candidate set (edge-map iteration order is fine here:
	// hosts are sorted below and haloSet dedupes).
	haloSet := map[network.SwitchID]bool{}
	addHalo := func(peer string) {
		if u, ok := baseAssign[peer]; ok && !candSet[u] && !haloSet[u] {
			haloSet[u] = true
			hosts = append(hosts, u)
		}
	}
	for _, name := range dirtyNames {
		for peer := range g.OutEdgeList(name) {
			addHalo(peer)
		}
		for peer := range g.InEdgeList(name) {
			addHalo(peer)
		}
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })

	// Links-free pseudo-topology over the instance hosts (the
	// buildHostState pattern): the compiled tables are U²-sized, U =
	// |region candidates| + |halo|, independent of the global S.
	topoR := network.NewTopology(topo.Name + "/replan-region")
	hostIdx := make(map[network.SwitchID]int32, len(hosts))
	for i, gid := range hosts {
		sw, err := topo.Switch(gid)
		if err != nil {
			return nil, err
		}
		topoR.AddSwitch(*sw) // ID rewritten to the dense local index
		hostIdx[gid] = int32(i)
	}

	// Instance MATs: every MAT resident on an instance host (their pair
	// bytes are the background the scores sit on), plus this region's
	// displaced MATs (unassigned, to be placed).
	names := make([]string, 0, len(dirtyNames))
	for name, u := range baseAssign {
		if _, ok := hostIdx[u]; ok {
			names = append(names, name)
		}
	}
	for _, name := range dirtyNames {
		if displaced[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	// Compile the instance straight out of g (no intermediate
	// tdg.Subgraph: its string-keyed node/edge maps and uncached topo
	// sort would cost more than the repair itself).
	ci, err := compileSubset(g, names, topoR, rm)
	if err != nil {
		return nil, err
	}

	dense := make([]int32, len(ci.Names))
	residents := make([][]string, len(hosts))
	for x, name := range ci.Names {
		if u, ok := baseAssign[name]; ok {
			h := hostIdx[u]
			dense[x] = h
			residents[h] = append(residents[h], name)
		} else {
			dense[x] = -1
		}
	}
	pt := ci.NewPairTable()
	ci.FillPairTable(dense, pt)
	ms := ci.NewMoveScratch()
	cyc := ci.NewCycleScratch()
	poll := newDeadlinePoller(ropts.Deadline, 16).withCancel(ropts.done())

	var wt *WeightTable
	var curSum int64
	if rates != nil {
		wt = NewWeightTable(rates, int32(topo.NumSwitches())).Compact(hosts)
		curSum, _ = wt.Score(pt)
	}

	// Candidate local indices, ascending host ID; halo hosts are never
	// placement targets.
	cands := make([]int32, 0, len(hosts))
	for i, gid := range hosts {
		if candSet[gid] {
			cands = append(cands, int32(i))
		}
	}

	// Greedy re-placement of this region's displaced MATs in topo
	// order — the same PlaceScore kernels as the whole-topology repair,
	// U-indexed instead of S-indexed. g's cached topological index
	// orders them (a topological order of g restricted to any subset is
	// a topological order of the induced subgraph), sparing each region
	// an uncached O(V+E) sort.
	gpos, err := g.TopoIndex()
	if err != nil {
		return nil, err
	}
	place := make([]string, 0, len(dirtyNames))
	for _, name := range dirtyNames {
		if displaced[name] {
			place = append(place, name)
		}
	}
	sort.Slice(place, func(i, j int) bool { return gpos[place[i]] < gpos[place[j]] })
	type scored struct {
		h    int32
		w    int64
		amax int
	}
	less := func(a, b scored) bool {
		if a.w != b.w {
			return a.w < b.w
		}
		if a.amax != b.amax {
			return a.amax < b.amax
		}
		return hosts[a.h] < hosts[b.h]
	}
	scoredCands := make([]scored, 0, len(cands))
	for _, name := range place {
		if poll.Expired() {
			return nil, fmt.Errorf("deadline expired or replan canceled during regional repair")
		}
		x := ci.Index[name]
		scoredCands = scoredCands[:0]
		//hermes:hot
		for _, h := range cands {
			c := scored{h: h, amax: ci.PlaceScore(dense, pt, ms, x, h)}
			if wt != nil {
				ws, wm := ci.PlaceScoreWeighted(dense, pt, ms, wt, x, h, curSum)
				c.w = ropts.TrafficObjective.pick(ws, wm)
			}
			scoredCands = append(scoredCands, c)
		}
		// Selection scan in (W, A_max, host-ID) order: nearly every MAT
		// lands on its first choice, so extracting minima on demand beats
		// sorting the whole candidate list per MAT.
		placed := false
		for range scoredCands {
			best := -1
			for i, c := range scoredCands {
				if c.h < 0 {
					continue // already tried
				}
				if best < 0 || less(c, scoredCands[best]) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			c := scoredCands[best]
			scoredCands[best].h = -1
			sw, err := topo.Switch(hosts[c.h])
			if err != nil {
				continue
			}
			// Fit against the FULL graph: packShared orders co-located MATs
			// by g's canonical topo index, which is what the merged plan's
			// materialize will pack by — the subgraph's order can disagree
			// and flip a verdict.
			if !FitsSwitch(g, append(append([]string(nil), residents[c.h]...), name), sw, rm) {
				continue
			}
			dense[x] = c.h
			if !ci.AssignmentAcyclic(dense, cyc) {
				dense[x] = -1
				continue
			}
			residents[c.h] = append(residents[c.h], name)
			ci.ApplyPlace(dense, pt, x, c.h)
			if wt != nil {
				curSum, _ = wt.Score(pt)
			}
			placed = true
			break
		}
		if !placed {
			return nil, fmt.Errorf("%w: no feasible switch for displaced MAT %q", errRegionInfeasible, name)
		}
	}

	if err := polishRegion(ci, topo, g, hosts, cands, dense, pt, residents, dirtyNames, wt, ropts, rm, ms, cyc); err != nil {
		return nil, err
	}

	out := make(map[string]network.SwitchID, len(dirtyNames))
	for _, name := range dirtyNames {
		x, ok := ci.Index[name]
		if !ok || dense[x] < 0 {
			return nil, fmt.Errorf("%w: dirty MAT %q left unplaced", errRegionInfeasible, name)
		}
		out[name] = hosts[dense[x]]
	}
	return out, nil
}

// polishRegion runs the bounded first-improvement climb over one
// region's dirty MATs. Move targets are the candidate hosts already in
// use (the same used-switch restriction as the whole-plan climb); halo
// hosts are never targets. The climb is serial within the region —
// regions already run concurrently — so every worker count yields the
// same plan. ε1 is not probed locally (the pseudo-topology is
// links-free); the merged plan's Validate enforces it globally.
func polishRegion(ci *CompiledInstance, topo *network.Topology, g *tdg.Graph,
	hosts []network.SwitchID, cands []int32, dense []int32, pt *PairTable,
	residents [][]string, dirtyNames []string, wt *WeightTable,
	ropts ReplanOptions, rm program.ResourceModel, ms *MoveScratch, cyc *CycleScratch) error {

	total := ci.FillPairTable(dense, pt)
	amax := pt.Max()
	var wval, curSum int64
	var acap int
	if wt != nil {
		s, m := wt.Score(pt)
		curSum = s
		wval = ropts.TrafficObjective.pick(s, m)
		acap = AMaxCap(ropts.Options, amax)
	}
	deadline := time.Now().Add(time.Second)
	if !ropts.Deadline.IsZero() && ropts.Deadline.Before(deadline) {
		deadline = ropts.Deadline
	}
	poll := newDeadlinePoller(deadline, 32).withCancel(ropts.done())

	dirtyIdx := make([]int32, 0, len(dirtyNames))
	for _, name := range dirtyNames {
		if x, ok := ci.Index[name]; ok {
			dirtyIdx = append(dirtyIdx, x)
		}
	}
	commit := func(x, from, to int32) {
		name := ci.Names[x]
		l := residents[from]
		for i, n := range l {
			if n == name {
				residents[from] = append(l[:i], l[i+1:]...)
				break
			}
		}
		residents[to] = append(residents[to], name)
	}
	moveOK := func(x, to int32) bool {
		sw, err := topo.Switch(hosts[to])
		if err != nil {
			return false
		}
		if !FitsSwitch(g, append(append([]string(nil), residents[to]...), ci.Names[x]), sw, rm) {
			return false
		}
		from := dense[x]
		dense[x] = to
		ok := ci.AssignmentAcyclic(dense, cyc)
		dense[x] = from
		return ok
	}
	var usedCands []int32
	const maxPasses = 4
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		usedCands = usedCands[:0]
		for _, h := range cands {
			if len(residents[h]) > 0 {
				usedCands = append(usedCands, h)
			}
		}
		for _, x := range dirtyIdx {
			if poll.Expired() {
				return nil
			}
			cur := dense[x]
			for _, h := range usedCands {
				if h == cur {
					continue
				}
				a, cross := ci.MoveScore(dense, pt, ms, x, h, total)
				if wt == nil {
					if a > amax || (a == amax && cross >= total) {
						continue
					}
					if !moveOK(x, h) {
						continue
					}
					total = ci.ApplyMove(dense, pt, x, h, total)
					amax = a
					commit(x, cur, h)
					cur = h
					improved = true
					continue
				}
				// Weighted descent on the lexicographic (W, A_max, cross)
				// key, with the structural A_max capped at the climb-start
				// ceiling (AMaxSlack), mirroring the whole-plan climb.
				if a > acap {
					continue
				}
				ws, wm := ci.MoveScoreWeighted(dense, pt, ms, wt, x, h, curSum)
				w := ropts.TrafficObjective.pick(ws, wm)
				if w > wval || (w == wval && (a > amax || (a == amax && cross >= total))) {
					continue
				}
				if !moveOK(x, h) {
					continue
				}
				total = ci.ApplyMove(dense, pt, x, h, total)
				wval, curSum = w, ws
				amax = a
				commit(x, cur, h)
				cur = h
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return nil
}
