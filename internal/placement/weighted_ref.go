// Map-based reference twins of the weighted scoring kernels in
// weighted.go, in the style of ref.go: the property tests assert the
// compiled kernels agree with these bit-for-bit, and cmd/hermes-bench
// measures both sides for the BENCH_traffic.json baseline. Not called
// on any solver hot path.
package placement

import (
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/tdg"
)

// AssignmentWeightedRef is the weighted objective of a name-keyed
// assignment via a freshly built pair map — the reference twin of
// CompiledInstance.AssignmentWeighted. weights follows the
// WeightTable.WeightMap convention (absent keys weigh zero).
func AssignmentWeightedRef(g *tdg.Graph, assign map[string]network.SwitchID, weights map[RouteKey]int64) (sum, max int64) {
	pair, _ := PairBytesRef(g, assign)
	for k, b := range pair {
		if b <= 0 {
			continue
		}
		v := weights[k] * int64(b)
		sum += v
		if v > max {
			max = v
		}
	}
	return sum, max
}

// MoveScoreWeightedRef evaluates the weighted objective of the
// assignment with one MAT moved to cand and everything else fixed,
// through the map-based delta overlay — the reference twin of
// CompiledInstance.MoveScoreWeighted. Every MAT incident to name must
// be assigned; pair must match assign; delta is caller scratch
// (contents discarded).
func MoveScoreWeightedRef(g *tdg.Graph, assign map[string]network.SwitchID, pair, delta map[RouteKey]int, weights map[RouteKey]int64, name string, cand network.SwitchID) (sum, max int64) {
	for k := range delta {
		delete(delta, k)
	}
	old := assign[name]
	shift := func(peer network.SwitchID, oldKey, newKey RouteKey, bytes int) {
		if peer != old {
			delta[oldKey] -= bytes
		}
		if peer != cand {
			delta[newKey] += bytes
		}
	}
	for _, e := range g.OutEdges(name) {
		peer := assign[e.To]
		shift(peer,
			RouteKey{From: old, To: peer},
			RouteKey{From: cand, To: peer},
			e.MetadataBytes)
	}
	for _, e := range g.InEdges(name) {
		peer := assign[e.From]
		shift(peer,
			RouteKey{From: peer, To: old},
			RouteKey{From: peer, To: cand},
			e.MetadataBytes)
	}
	return weightedOverRef(pair, delta, weights)
}

// PlaceScoreWeightedRef scores placing the currently-unassigned MAT on
// switch u under the weighted objective — the reference twin of
// CompiledInstance.PlaceScoreWeighted.
func PlaceScoreWeightedRef(g *tdg.Graph, assign map[string]network.SwitchID, pair, delta map[RouteKey]int, weights map[RouteKey]int64, name string, u network.SwitchID) (sum, max int64) {
	for k := range delta {
		delete(delta, k)
	}
	for _, e := range g.OutEdges(name) {
		if peer, ok := assign[e.To]; ok && peer != u {
			delta[RouteKey{From: u, To: peer}] += e.MetadataBytes
		}
	}
	for _, e := range g.InEdges(name) {
		if peer, ok := assign[e.From]; ok && peer != u {
			delta[RouteKey{From: peer, To: u}] += e.MetadataBytes
		}
	}
	return weightedOverRef(pair, delta, weights)
}

// weightedOverRef folds a delta overlay onto a pair map under the
// weights, flooring cells at zero on both sides.
func weightedOverRef(pair, delta map[RouteKey]int, weights map[RouteKey]int64) (sum, max int64) {
	for k, b := range pair {
		if d, ok := delta[k]; ok {
			b += d
		}
		if b <= 0 {
			continue
		}
		v := weights[k] * int64(b)
		sum += v
		if v > max {
			max = v
		}
	}
	for k, d := range delta {
		if _, ok := pair[k]; ok || d <= 0 {
			continue
		}
		v := weights[k] * int64(d)
		sum += v
		if v > max {
			max = v
		}
	}
	return sum, max
}
