package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/equiv"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
)

// regionalQualityRatio is the differential acceptance gate: a
// region-local replan's A_max may exceed a sharded cold re-solve's by
// at most this factor (ISSUE 9 acceptance criterion).
const regionalQualityRatio = 1.2

// TestRegionalReplanDifferential is the satellite property test:
// across the Table III WANs × randomized drains × 2–4 regions, the
// region-local replan must produce a valid plan with A_max within the
// fixed ratio of ShardedGreedy-from-scratch on the drained topology,
// and the incremental equivalence re-check keyed off the replan's
// moved set must agree with the full checker on every repaired plan.
func TestRegionalReplanDifferential(t *testing.T) {
	rm := program.DefaultResourceModel
	for wan := 1; wan <= 3; wan++ {
		topo, err := network.TableIII(wan, network.TofinoSpec())
		if err != nil {
			t.Fatalf("TableIII(%d): %v", wan, err)
		}
		g := sharedTestInstance(t, topo, 12, 2000+int64(wan))
		for _, k := range []int{2, 3, 4} {
			t.Run(fmt.Sprintf("%s/k=%d", topo.Name, k), func(t *testing.T) {
				s := ShardedGreedy{Shards: k, Seed: 42}
				base, err := s.Solve(g, topo, placement.Options{})
				if err != nil {
					t.Fatalf("base solve: %v", err)
				}
				part, err := network.PartitionRegions(topo, k, 42)
				if err != nil {
					t.Fatal(err)
				}
				// Randomized drain: a seeded draw among the used switches, so
				// every (wan, k) case drains a different region/load mix.
				used := base.UsedSwitches()
				sort.Slice(used, func(i, j int) bool { return used[i] < used[j] })
				rng := rand.New(rand.NewSource(int64(100*wan + k)))
				drain := used[rng.Intn(len(used))]

				// QualityRatio pins the repair gate at the differential
				// ratio: a merged plan past it escalates to the overlapping
				// exchange and then to the gated cold re-solve, which is
				// exactly the contract under test.
				regional, rep, err := placement.ReplanWithOptions(base, s,
					placement.ReplanOptions{Partition: part, QualityRatio: regionalQualityRatio}, drain)
				if err != nil {
					t.Fatalf("regional replan: %v", err)
				}
				if err := regional.Validate(rm, 0, 0); err != nil {
					t.Fatalf("regional plan invalid: %v", err)
				}
				cold, _, err := placement.ReplanWithOptions(base, s,
					placement.ReplanOptions{Mode: placement.ReplanFull}, drain)
				if err != nil {
					t.Fatalf("cold replan: %v", err)
				}
				// Primary bound: within the ratio of the cold re-solve. An
				// incremental repair cannot out-solve its warm seed's global
				// structure, so when the pre-drain seed was already worse
				// than a fresh solve (sharded-solver variance on these small
				// WANs), the bound relaxes to "no worse than the seed" —
				// which is exactly what the QualityRatio gate enforces.
				if r, c := regional.AMax(), cold.AMax(); float64(r) > regionalQualityRatio*float64(c) && r > base.AMax() {
					t.Fatalf("regional A_max %dB exceeds %.2f x the %dB sharded cold re-solve and the %dB seed",
						r, regionalQualityRatio, c, base.AMax())
				}

				// Verdict differential: the incremental re-proof over the
				// moved components must agree with the full checker.
				rc, err := equiv.NewRechecker(g)
				if err != nil {
					t.Fatal(err)
				}
				if err := rc.Check(base, analyzer.Options{}); err != nil {
					t.Fatalf("baseline proof: %v", err)
				}
				st, incErr := rc.RecheckReplan(regional, rep, analyzer.Options{})
				full, err := equiv.NewChecker(g)
				if err != nil {
					t.Fatal(err)
				}
				fullErr := full.CheckPlan(regional, analyzer.Options{})
				if (incErr == nil) != (fullErr == nil) {
					t.Fatalf("verdicts diverge: incremental %v, full %v", incErr, fullErr)
				}
				if incErr != nil {
					t.Fatalf("repaired plan failed equivalence: %v", incErr)
				}
				// The merged synthetic TDG is typically one equivalence
				// component, so the re-check may legitimately take the full
				// proof; the property under test is verdict agreement, plus
				// basic stats sanity.
				if st.TotalMATs != g.NumNodes() {
					t.Fatalf("re-check stats cover %d of %d MATs", st.TotalMATs, g.NumNodes())
				}
			})
		}
	}
}

// TestAllowedRegions pins the overlapping-neighborhood mask on a
// 0–1–2–3 region chain.
func TestAllowedRegions(t *testing.T) {
	nbr := [][]int32{{1}, {0, 2}, {1, 3}, {2}}
	cases := []struct {
		overlap int
		want    []bool
	}{
		{1, []bool{true, true, false, false}},
		{2, []bool{true, true, true, false}},
		{3, []bool{true, true, true, true}},
	}
	for _, c := range cases {
		got := allowedRegions([2]int32{0, 1}, nbr, c.overlap, 4)
		for r := range c.want {
			if got[r] != c.want[r] {
				t.Fatalf("overlap=%d: region %d allowed=%v, want %v", c.overlap, r, got[r], c.want[r])
			}
		}
	}
}

// TestExchangeOverlap: the overlapping exchange on a deliberately bad
// merged assignment still strictly improves the objective, accepts
// moves, and leaves a consistent assignment — same contract as the
// classic schedule, with the wider target sets.
func TestExchangeOverlap(t *testing.T) {
	topo, err := network.CompositeWAN(3, network.TofinoSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	g := sharedTestInstance(t, topo, 10, 3)
	part, err := network.PartitionRegions(topo, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	var anchors []network.SwitchID
	for _, sw := range topo.Switches() {
		if sw.Programmable {
			anchors = append(anchors, sw.ID)
		}
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	blockSize := (len(order) + len(anchors) - 1) / len(anchors)
	assign := make(map[string]network.SwitchID, len(order))
	for i, name := range order {
		assign[name] = anchors[i/blockSize]
	}
	var st Stats
	if err := exchangeAssign(g, topo, part, assign, placement.Options{Workers: 2},
		program.DefaultResourceModel, 8, 2, &st); err != nil {
		t.Fatal(err)
	}
	if st.AMaxAfter > st.AMaxBefore {
		t.Fatalf("overlapping exchange worsened A_max: %d -> %d", st.AMaxBefore, st.AMaxAfter)
	}
	if st.Moves == 0 {
		t.Fatal("overlapping exchange accepted no moves on a round-robin seed")
	}
	if len(assign) != len(order) {
		t.Fatalf("exchange changed assignment size: %d vs %d", len(assign), len(order))
	}
}

// TestRegionExchangeHookRegistered: importing this package must arm
// the placement-side escalation hook.
func TestRegionExchangeHookRegistered(t *testing.T) {
	if placement.RegionExchangeHook == nil {
		t.Fatal("RegionExchangeHook not registered by package init")
	}
}
