package shard

import (
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// The regional replan escalation (DESIGN.md §14) needs the boundary
// exchange, but placement cannot import shard. Mirroring the
// PlanLintHook/PlanEquivHook pattern, importing this package arms
// placement.RegionExchangeHook with the overlapping-region exchange —
// every caller that can reach ShardedGreedy (hermes.go, the CLIs, the
// supervisor) gets the escalation for free.
func init() {
	placement.RegionExchangeHook = func(g *tdg.Graph, topo *network.Topology, part *network.Partition,
		assign map[string]network.SwitchID, opts placement.Options, rounds, overlap int) (placement.RegionExchangeStats, error) {

		if rounds <= 0 {
			rounds = escalationDefaultRounds
		}
		if overlap < 1 {
			overlap = 1
		}
		var st Stats
		rm := program.DefaultResourceModel
		if opts.Resources != nil {
			rm = *opts.Resources
		}
		err := exchangeAssign(g, topo, part, assign, opts, rm, rounds, overlap, &st)
		return placement.RegionExchangeStats{
			Hosts:      st.Hosts,
			Rounds:     st.Rounds,
			Moves:      st.Moves,
			AMaxBefore: st.AMaxBefore,
			AMaxAfter:  st.AMaxAfter,
		}, err
	}
}

// escalationDefaultRounds bounds a hook invocation that passes no
// round budget.
const escalationDefaultRounds = 4
