package shard

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/lint"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
	"github.com/hermes-net/hermes/internal/workload"
)

// qualityRatio is the acceptance gate: a sharded plan's A_max may
// exceed the whole-graph Greedy plan's by at most this factor. The
// gate is fixed (not tuned per topology) so quality regressions in the
// partitioner or exchange phase fail loudly.
const qualityRatio = 1.5

// sharedTestInstance builds a merged TDG over a topology from the
// paper's synthetic workload.
func sharedTestInstance(t *testing.T, topo *network.Topology, programs int, seed int64) *tdg.Graph {
	t.Helper()
	progs, err := workload.SyntheticSet(programs, workload.PaperSyntheticSpec(), seed)
	if err != nil {
		t.Fatalf("SyntheticSet: %v", err)
	}
	g, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return g
}

// solveBoth runs the whole-graph Greedy and the sharded solver on the
// same instance and returns both plans plus the shard stats.
func solveBoth(t *testing.T, g *tdg.Graph, topo *network.Topology, shards int, opts placement.Options) (*placement.Plan, *placement.Plan, Stats) {
	t.Helper()
	whole, err := (placement.Greedy{}).Solve(g, topo, opts)
	if err != nil {
		t.Fatalf("whole-graph Greedy: %v", err)
	}
	s := ShardedGreedy{Shards: shards, Seed: 42}
	sharded, st, err := s.SolveStats(g, topo, opts)
	if err != nil {
		t.Fatalf("ShardedGreedy (k=%d): %v", shards, err)
	}
	return whole, sharded, st
}

// TestShardedQualityGate is the satellite acceptance test: on the
// Table III WANs with 2-4 shards, the sharded plan must validate, pass
// the independent lint oracle, and stay within the fixed quality ratio
// of the whole-graph Greedy A_max.
func TestShardedQualityGate(t *testing.T) {
	rm := program.DefaultResourceModel
	for wan := 1; wan <= 3; wan++ {
		topo, err := network.TableIII(wan, network.TofinoSpec())
		if err != nil {
			t.Fatalf("TableIII(%d): %v", wan, err)
		}
		g := sharedTestInstance(t, topo, 12, 1000+int64(wan))
		for _, k := range []int{2, 3, 4} {
			t.Run(fmt.Sprintf("%s/k=%d", topo.Name, k), func(t *testing.T) {
				whole, sharded, st := solveBoth(t, g, topo, k, placement.Options{})
				if st.FellBack {
					t.Fatalf("sharded solve fell back to whole-graph on %d switches", topo.NumSwitches())
				}
				if err := sharded.Validate(rm, 0, 0); err != nil {
					t.Fatalf("sharded plan invalid: %v", err)
				}
				if err := lint.CheckPlanOracle(sharded, rm, 0, 0, analyzer.Options{}); err != nil {
					t.Fatalf("lint oracle rejected sharded plan: %v", err)
				}
				w, s := whole.AMax(), sharded.AMax()
				if float64(s) > float64(w)*qualityRatio {
					t.Fatalf("quality gate: sharded A_max %d vs whole-graph %d exceeds ratio %.2f",
						s, w, qualityRatio)
				}
				if st.AMaxAfter > st.AMaxBefore {
					t.Fatalf("exchange phase worsened A_max: %d -> %d", st.AMaxBefore, st.AMaxAfter)
				}
			})
		}
	}
}

// assignmentOf flattens a plan to its MAT->switch map for comparison.
func assignmentOf(p *placement.Plan) map[string]network.SwitchID {
	out := make(map[string]network.SwitchID, len(p.Assignments))
	for name, sp := range p.Assignments {
		out[name] = sp.Switch
	}
	return out
}

func sameAssignment(a, b map[string]network.SwitchID) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestShardedWorkersInvariance is the nested-parallelism satellite:
// every Workers value must produce the identical plan (region solves
// run with Workers=1 inside the shard pool), and the solve must not
// fan out more goroutines than the shard pool allows.
func TestShardedWorkersInvariance(t *testing.T) {
	topo, err := network.CompositeWAN(4, network.TofinoSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	g := sharedTestInstance(t, topo, 16, 7)
	s := ShardedGreedy{Shards: 4, Seed: 42}

	base, _, err := s.SolveStats(g, topo, placement.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := assignmentOf(base)

	for _, w := range []int{2, 4, 8} {
		// Sample the goroutine count while the solve runs: with serial
		// region interiors the fan-out stays bounded by the shard pool
		// width plus harness overhead, instead of Workers * inner-Workers.
		before := runtime.NumGoroutine()
		done := make(chan struct{})
		peakCh := make(chan int, 1)
		go func() {
			peak := before
			tick := time.NewTicker(200 * time.Microsecond)
			defer tick.Stop()
			for {
				select {
				case <-done:
					peakCh <- peak
					return
				case <-tick.C:
					if n := runtime.NumGoroutine(); n > peak {
						peak = n
					}
				}
			}
		}()
		p, _, err := s.SolveStats(g, topo, placement.Options{Workers: w})
		close(done)
		peak := <-peakCh
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if !sameAssignment(want, assignmentOf(p)) {
			t.Fatalf("Workers=%d produced a different plan than Workers=1", w)
		}
		// Bound: sampler + shard pool + per-region solver overhead
		// (deadline pollers etc.). Without the Workers=1 pinning each of
		// the 4 regions would spawn w workers of its own, blowing well
		// past this.
		limit := before + w + 4*4 + 8
		if peak > limit {
			t.Fatalf("Workers=%d: goroutine peak %d exceeds bound %d (nested parallelism?)",
				w, peak, limit)
		}
	}
}

// TestShardedDeterministic: same seed, same plan, byte-identical
// partition and assignment across repeated solves.
func TestShardedDeterministic(t *testing.T) {
	topo, err := network.CompositeWAN(3, network.TofinoSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	g := sharedTestInstance(t, topo, 10, 3)
	s := ShardedGreedy{Shards: 3, Seed: 9}
	a, _, err := s.SolveStats(g, topo, placement.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.SolveStats(g, topo, placement.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sameAssignment(assignmentOf(a), assignmentOf(b)) {
		t.Fatal("repeated sharded solves diverged")
	}
}

// TestShardedFallback: degenerate shard counts and tiny instances fall
// back to the whole-graph solver and report it in the stats.
func TestShardedFallback(t *testing.T) {
	topo, err := network.TableIII(1, network.TofinoSpec())
	if err != nil {
		t.Fatal(err)
	}
	g := sharedTestInstance(t, topo, 4, 1)
	for _, s := range []ShardedGreedy{{Shards: 0}, {Shards: 1}, {Shards: 1000}} {
		p, st, err := s.SolveStats(g, topo, placement.Options{})
		if err != nil {
			t.Fatalf("Shards=%d: %v", s.Shards, err)
		}
		if !st.FellBack {
			t.Fatalf("Shards=%d: expected fallback", s.Shards)
		}
		if p.SolverName != (ShardedGreedy{}).Name() {
			t.Fatalf("fallback plan reports solver %q", p.SolverName)
		}
		if err := p.Validate(program.DefaultResourceModel, 0, 0); err != nil {
			t.Fatalf("fallback plan invalid: %v", err)
		}
	}
}

// TestShardedHonorsOptionsShards: Options.Shards overrides the struct
// field, the facade contract the CLI relies on.
func TestShardedHonorsOptionsShards(t *testing.T) {
	topo, err := network.CompositeWAN(3, network.TofinoSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	g := sharedTestInstance(t, topo, 8, 2)
	_, st, err := (ShardedGreedy{Seed: 9}).SolveStats(g, topo, placement.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.FellBack || st.Shards != 3 {
		t.Fatalf("Options.Shards not honored: %+v", st)
	}
}

// TestExchangeImprovesSeededCut: construct a deliberately bad merged
// assignment (round-robin across switches) and verify the exchange
// phase strictly improves the lexicographic objective on it.
func TestExchangeImprovesSeededCut(t *testing.T) {
	topo, err := network.CompositeWAN(3, network.TofinoSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	g := sharedTestInstance(t, topo, 10, 3)
	part, err := network.PartitionRegions(topo, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Scatter small contiguous topo-order blocks over every programmable
	// switch: contiguity keeps the contracted switch graph acyclic (all
	// inter-block edges point forward, and the exchange refuses moves on
	// a cyclic seed), while the tiny block size splits most TDG edges
	// across switches and regions — heavy cross-boundary traffic with
	// every switch far under capacity, so migrations are feasible.
	var anchors []network.SwitchID
	for _, sw := range topo.Switches() {
		if sw.Programmable {
			anchors = append(anchors, sw.ID)
		}
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	blockSize := (len(order) + len(anchors) - 1) / len(anchors)
	assign := make(map[string]network.SwitchID, len(order))
	for i, name := range order {
		assign[name] = anchors[i/blockSize]
	}
	var st Stats
	s := ShardedGreedy{Shards: 3, Seed: 9}
	if err := s.exchange(g, topo, part, assign, placement.Options{Workers: 2}, program.DefaultResourceModel, 8, &st); err != nil {
		t.Fatal(err)
	}
	if st.AMaxAfter > st.AMaxBefore {
		t.Fatalf("exchange worsened A_max: %d -> %d", st.AMaxBefore, st.AMaxAfter)
	}
	if st.Moves == 0 {
		t.Fatal("exchange accepted no moves on a round-robin seed")
	}
	// The mutated assignment must still be consistent: every MAT
	// assigned, only to known switches.
	if len(assign) != len(order) {
		t.Fatalf("exchange changed assignment size: %d vs %d", len(assign), len(order))
	}
	ids := map[network.SwitchID]bool{}
	for _, sw := range topo.Switches() {
		ids[sw.ID] = true
	}
	for name, id := range assign {
		if !ids[id] {
			t.Fatalf("MAT %s assigned to unknown switch %d", name, id)
		}
	}
}

// TestChunkTDGCover: chunks exactly cover the TDG in topological order
// with sizes tracking region capacity.
func TestChunkTDGCover(t *testing.T) {
	topo, err := network.CompositeWAN(4, network.TofinoSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	g := sharedTestInstance(t, topo, 12, 5)
	part, err := network.PartitionRegions(topo, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := chunkTDG(g, part, program.DefaultResourceModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks, want 4", len(chunks))
	}
	var all []string
	for _, c := range chunks {
		all = append(all, c...)
	}
	if len(all) != g.NumNodes() {
		t.Fatalf("chunks cover %d of %d nodes", len(all), g.NumNodes())
	}
	seen := map[string]bool{}
	for _, n := range all {
		if seen[n] {
			t.Fatalf("node %s in two chunks", n)
		}
		seen[n] = true
	}
	// Contiguity in topo order: the concatenation must equal a valid
	// topological order (it is the order chunkTDG cut).
	pos := make(map[string]int, len(all))
	for i, n := range all {
		pos[n] = i
	}
	for _, e := range g.EdgeList() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("chunk concatenation violates edge %s->%s", e.From, e.To)
		}
	}
}

// TestShardedBeatsTrivialBaseline sanity-checks the end-to-end path on
// a mid-size composite WAN: the sharded solver completes, uses more
// than one region, and its stats are internally consistent.
func TestShardedEndToEndStats(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size instance")
	}
	topo, err := network.CompositeWAN(6, network.TofinoSpec(), 13)
	if err != nil {
		t.Fatal(err)
	}
	g := sharedTestInstance(t, topo, 24, 17)
	s := ShardedGreedy{Shards: 4, Seed: 1, ImproveBudget: 200 * time.Millisecond}
	p, st, err := s.SolveStats(g, topo, placement.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.FellBack || st.Shards != 4 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.Hosts <= 0 || st.AMaxBefore < st.AMaxAfter {
		t.Fatalf("inconsistent exchange stats: %+v", st)
	}
	if p.AMax() != st.AMaxAfter {
		t.Fatalf("plan A_max %d != exchange A_max %d", p.AMax(), st.AMaxAfter)
	}
	if err := p.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatal(err)
	}
	used := p.UsedSwitches()
	sort.Slice(used, func(i, j int) bool { return used[i] < used[j] })
	if len(used) == 0 {
		t.Fatal("no switches used")
	}
}
