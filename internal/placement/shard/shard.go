// Package shard implements region-sharded placement for large
// topologies (ROADMAP item 2; DESIGN.md §11). Whole-graph Greedy is
// superlinear in switches × MATs, which caps it at a few hundred
// switches; ShardedGreedy recovers near-linear scaling by decomposing
// the instance:
//
//  1. Partition the topology into k connected regions balanced by
//     programmable stage capacity (network.PartitionRegions).
//  2. Cut the merged TDG into k contiguous topo-order chunks sized
//     proportionally to region capacity, choosing cut points that
//     minimize crossing metadata bytes — contiguity makes the initial
//     chunk→region contraction a DAG by construction.
//  3. Solve each (chunk, region sub-topology) with the compiled Greedy
//     concurrently under Options.Workers; each regional solve runs its
//     local search serially (Workers=1), so the two parallelism levels
//     never multiply and every worker count yields identical plans.
//  4. Reconcile: bounded boundary-exchange rounds migrate MATs across
//     region cuts when that improves the global (A_max, cross-byte)
//     objective (exchange.go).
//
// The merged assignment is materialized, ε-checked, and lint-gated
// exactly like any other solver's plan.
package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// ShardedGreedy is the region-sharded solver. The zero value delegates
// to whole-graph Greedy (Shards ≤ 1); Options.Shards, when set,
// overrides the struct field so the facade can wire `hermes -shards`
// straight through.
type ShardedGreedy struct {
	// Shards is the region count k. ≤1 means whole-graph.
	Shards int
	// Seed drives the topology partitioner; zero means 1.
	Seed int64
	// Rounds caps the boundary-exchange rounds; zero means 8, negative
	// disables the exchange (ablation).
	Rounds int
	// ImproveBudget caps each regional local-search polish. Zero means
	// the whole-graph default (2s) divided by the shard count, floored
	// at 100ms — so the aggregate polish budget of a sharded solve
	// matches the whole-graph solver it replaces.
	ImproveBudget time.Duration
	// Overlap sets how many region cuts an exchange migration may cross
	// per round (DESIGN.md §14). ≤1 keeps the classic pair-local
	// targets; 2 admits the 2-hop overlapping region neighborhoods.
	Overlap int
	// Partition, when non-nil and built over a topology with the same
	// switch count, is reused instead of re-partitioning — the
	// supervisor and the regional replan path hand the solver the
	// partition they already maintain.
	Partition *network.Partition
}

var _ placement.Solver = (*ShardedGreedy)(nil)

// Name implements Solver.
func (ShardedGreedy) Name() string { return "Hermes-Shard" }

// Stats reports what a sharded solve did; SolveStats returns it
// alongside the plan (Exp#10 records these).
type Stats struct {
	// Shards is the effective region count.
	Shards int
	// FellBack marks solves that ran whole-graph Greedy instead (≤1
	// shard, warm seed present, tiny TDG, or a regional failure).
	FellBack bool
	// BoundaryLinks counts topology links crossing region cuts.
	BoundaryLinks int
	// Hosts counts the switches used by the merged assignment (the
	// exchange phase's compacted index space).
	Hosts int
	// Rounds and Moves count executed exchange rounds and accepted
	// cross-boundary migrations.
	Rounds, Moves int
	// AMaxBefore/AMaxAfter bracket the exchange phase (Eq. 1 bytes).
	AMaxBefore, AMaxAfter int
	// PartitionTime/RegionTime/ExchangeTime split the solve wall clock.
	PartitionTime, RegionTime, ExchangeTime time.Duration
}

func (s ShardedGreedy) shards(opts placement.Options) int {
	if opts.Shards > 0 {
		return opts.Shards
	}
	return s.Shards
}

func (s ShardedGreedy) seed() int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return 1
}

func (s ShardedGreedy) rounds() int {
	if s.Rounds < 0 {
		return 0
	}
	if s.Rounds == 0 {
		return 8
	}
	return s.Rounds
}

func (s ShardedGreedy) overlap() int {
	if s.Overlap > 1 {
		return s.Overlap
	}
	return 1
}

func (s ShardedGreedy) regionBudget(k int) time.Duration {
	if s.ImproveBudget > 0 {
		return s.ImproveBudget
	}
	b := 2 * time.Second / time.Duration(k)
	if b < 100*time.Millisecond {
		b = 100 * time.Millisecond
	}
	return b
}

func workers(opts placement.Options) int {
	if opts.Workers > 0 {
		return opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Solve implements Solver.
func (s ShardedGreedy) Solve(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error) {
	p, _, err := s.SolveStats(g, topo, opts)
	return p, err
}

// SolveStats is Solve plus the sharding statistics.
func (s ShardedGreedy) SolveStats(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, Stats, error) {
	start := time.Now()
	st := Stats{Shards: s.shards(opts)}
	k := st.Shards

	// Whole-graph cases: no sharding requested, a warm seed (replans
	// polish in place; re-sharding would discard the seed), or a TDG too
	// small to cut k ways.
	if k <= 1 || opts.Warm != nil || g.NumNodes() < 2*k {
		return s.fallback(g, topo, opts, &st)
	}

	part := s.Partition
	if part == nil || part.NumRegions() != k || !partitionMatches(part, topo) {
		var err error
		part, err = network.PartitionRegions(topo, k, s.seed())
		if err != nil {
			// Undersized or disconnected-for-k topologies solve whole-graph.
			return s.fallback(g, topo, opts, &st)
		}
	}
	st.PartitionTime = time.Since(start)
	st.BoundaryLinks = len(part.BoundaryLinks())

	rm := program.DefaultResourceModel
	if opts.Resources != nil {
		rm = *opts.Resources
	}
	chunks, err := chunkTDG(g, part, rm)
	if err != nil {
		return nil, st, err
	}

	regionStart := time.Now()
	assign, rerr := s.solveRegions(g, topo, part, chunks, opts)
	if rerr != nil {
		// A region that cannot host its chunk (capacity/packing edge
		// cases) demotes the solve to whole-graph rather than failing a
		// deployable instance.
		return s.fallback(g, topo, opts, &st)
	}
	st.RegionTime = time.Since(regionStart)

	if rounds := s.rounds(); rounds > 0 {
		exStart := time.Now()
		if err := s.exchange(g, topo, part, assign, opts, rm, rounds, &st); err != nil {
			return nil, st, err
		}
		st.ExchangeTime = time.Since(exStart)
	}

	plan, err := s.finalize(g, topo, assign, opts, rm)
	if err != nil {
		return nil, st, err
	}
	plan.SolveTime = time.Since(start)
	return plan, st, nil
}

// partitionMatches reports whether a standing partition can be reused
// for a solve over topo: same switch count and identical programmable
// capacity per switch. Region solves build their sub-topologies from
// the partition's stored topology, so a drained or re-specced clone
// must re-partition — reusing the stale view would place MATs on
// switches the solve topology no longer offers.
func partitionMatches(part *network.Partition, topo *network.Topology) bool {
	pt := part.Topology()
	if pt.NumSwitches() != topo.NumSwitches() {
		return false
	}
	for _, sw := range topo.Switches() {
		psw, err := pt.Switch(sw.ID)
		if err != nil {
			return false
		}
		if psw.Programmable != sw.Programmable || psw.Stages != sw.Stages ||
			psw.StageCapacity != sw.StageCapacity {
			return false
		}
	}
	return true
}

// fallback runs whole-graph Greedy with the caller's options.
func (s ShardedGreedy) fallback(g *tdg.Graph, topo *network.Topology, opts placement.Options, st *Stats) (*placement.Plan, Stats, error) {
	st.FellBack = true
	p, err := placement.Greedy{}.Solve(g, topo, opts)
	if p != nil {
		p.SolverName = s.Name()
	}
	return p, *st, err
}

// chunkTDG cuts the merged TDG into k contiguous topo-order chunks,
// one per region, sized proportionally to region programmable capacity.
// Cut points are chosen within a balance window to minimize crossing
// metadata bytes (the sweep uses the DAG property: every edge goes
// forward in topo order, so crossing(p) updates in O(deg) per step).
// Contiguity guarantees cross-chunk edges always point from a lower
// chunk to a higher one, so the merged region-level assignment starts
// acyclic.
func chunkTDG(g *tdg.Graph, part *network.Partition, rm program.ResourceModel) ([][]string, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	n := len(order)
	cum := make([]float64, n+1)    // cum[p] = requirement of order[:p]
	crossing := make([]int64, n+1) // crossing[p] = bytes across cut at p
	maxReq := 0.0
	for i, name := range order {
		node, _ := g.Node(name)
		r := rm.Requirement(node.MAT)
		cum[i+1] = cum[i] + r
		if r > maxReq {
			maxReq = r
		}
		var ob, ib int64
		for _, e := range g.OutEdges(name) {
			ob += int64(e.MetadataBytes)
		}
		for _, e := range g.InEdges(name) {
			ib += int64(e.MetadataBytes)
		}
		crossing[i+1] = crossing[i] + ob - ib
	}
	totalReq := cum[n]

	k := part.NumRegions()
	caps := make([]float64, k)
	capTotal := 0.0
	for r := 0; r < k; r++ {
		caps[r] = part.RegionCapacity(r)
		capTotal += caps[r]
	}
	if capTotal <= 0 {
		return nil, fmt.Errorf("shard: partition has no programmable capacity")
	}

	// window: how far a cut may drift from its capacity-proportional
	// target in requirement units; at least one max-size MAT so a valid
	// position always exists.
	window := 0.10 * totalReq / float64(k)
	if window < maxReq {
		window = maxReq
	}
	cuts := make([]int, k+1)
	cuts[k] = n
	capPrefix := 0.0
	prev := 0
	for r := 0; r < k-1; r++ {
		capPrefix += caps[r]
		if caps[r] == 0 {
			cuts[r+1] = prev // zero-capacity region hosts nothing
			continue
		}
		target := totalReq * capPrefix / capTotal
		lo := sort.Search(n+1, func(p int) bool { return cum[p] >= target-window })
		hi := sort.Search(n+1, func(p int) bool { return cum[p] > target+window })
		if lo < prev {
			lo = prev
		}
		if hi > n {
			hi = n
		}
		best := -1
		for p := lo; p <= hi; p++ {
			if best < 0 || crossing[p] < crossing[best] {
				best = p
			}
		}
		if best < 0 {
			best = prev
		}
		cuts[r+1] = best
		prev = best
	}
	chunks := make([][]string, k)
	for r := 0; r < k; r++ {
		chunks[r] = order[cuts[r]:cuts[r+1]]
	}
	return chunks, nil
}

// solveRegions runs one compiled Greedy per non-empty chunk on its
// region sub-topology. Regions solve concurrently under Options.Workers
// through the shard pool; every inner solve runs with Workers=1, so no
// nested parallelism arises and the per-region plan is byte-identical
// to a serial solve (the regression test asserts both). The returned
// assignment maps every MAT to a global switch ID.
func (s ShardedGreedy) solveRegions(g *tdg.Graph, topo *network.Topology, part *network.Partition, chunks [][]string, opts placement.Options) (map[string]network.SwitchID, error) {
	k := part.NumRegions()
	results := make([]map[string]network.SwitchID, k)
	errs := make([]error, k)
	inner := placement.Greedy{ImproveBudget: s.regionBudget(k)}
	ropts := placement.Options{
		Epsilon1:         opts.Epsilon1,
		Deadline:         opts.Deadline,
		Resources:        opts.Resources,
		Workers:          1, // no nested parallelism under the shard pool
		Ctx:              opts.Ctx,
		TrafficObjective: opts.TrafficObjective,
		AMaxSlack:        opts.AMaxSlack,
	}
	parallelFor(k, workers(opts), func(_, r int) {
		if len(chunks[r]) == 0 {
			results[r] = map[string]network.SwitchID{}
			return
		}
		sub, err := g.Subgraph(chunks[r])
		if err != nil {
			errs[r] = err
			return
		}
		topoR, members, err := part.SubTopology(r)
		if err != nil {
			errs[r] = err
			return
		}
		iopts := ropts
		if opts.Traffic != nil {
			// Each region solves under the global pair rates compacted
			// onto its member ID space (Restrict drops only demand
			// between non-members; the member-pair rates keep their
			// global transit contributions).
			tm, err := opts.Traffic.Restrict(topo, members)
			if err != nil {
				errs[r] = fmt.Errorf("shard: region %d traffic: %w", r, err)
				return
			}
			iopts.Traffic = tm
		}
		plan, err := inner.Solve(sub, topoR, iopts)
		if err != nil {
			errs[r] = fmt.Errorf("shard: region %d: %w", r, err)
			return
		}
		m := make(map[string]network.SwitchID, len(plan.Assignments))
		for name, sp := range plan.Assignments {
			m[name] = members[sp.Switch] // local → global switch ID
		}
		results[r] = m
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := make(map[string]network.SwitchID, g.NumNodes())
	for _, m := range results {
		for name, u := range m {
			merged[name] = u
		}
	}
	if len(merged) != g.NumNodes() {
		return nil, fmt.Errorf("shard: merged assignment covers %d of %d MATs", len(merged), g.NumNodes())
	}
	return merged, nil
}

// finalize materializes the merged assignment, enforces the global ε
// bounds, and applies the lint hook.
func (s ShardedGreedy) finalize(g *tdg.Graph, topo *network.Topology, assign map[string]network.SwitchID, opts placement.Options, rm program.ResourceModel) (*placement.Plan, error) {
	plan, err := placement.MaterializeAssignment(g, topo, assign, rm)
	if err != nil {
		return nil, fmt.Errorf("shard: materialize: %w", err)
	}
	plan.SolverName = s.Name()
	if opts.Epsilon2 > 0 {
		if occ := plan.QOcc(); occ > opts.Epsilon2 {
			return nil, fmt.Errorf("shard: plan occupies %d switches, ε2=%d", occ, opts.Epsilon2)
		}
	}
	if opts.Epsilon1 > 0 {
		lat, err := planLatency(topo, assign, g)
		if err != nil {
			return nil, err
		}
		if lat > opts.Epsilon1 {
			return nil, fmt.Errorf("shard: plan latency %v exceeds ε1=%v", lat, opts.Epsilon1)
		}
	}
	if opts.Lint && placement.PlanLintHook != nil {
		if err := placement.PlanLintHook(plan, opts); err != nil {
			return nil, fmt.Errorf("shard: plan rejected by lint: %w", err)
		}
	}
	if opts.Equiv && placement.PlanEquivHook != nil {
		if err := placement.PlanEquivHook(plan, opts); err != nil {
			return nil, fmt.Errorf("shard: plan rejected by equivalence check: %w", err)
		}
	}
	return plan, nil
}

// planLatency sums shortest-path latency over distinct communicating
// switch pairs (Eq. 2 on the merged assignment, global topology).
func planLatency(topo *network.Topology, assign map[string]network.SwitchID, g *tdg.Graph) (time.Duration, error) {
	seen := map[[2]network.SwitchID]bool{}
	var total time.Duration
	for _, e := range g.EdgeList() {
		ua, ub := assign[e.From], assign[e.To]
		if ua == ub {
			continue
		}
		key := [2]network.SwitchID{ua, ub}
		if seen[key] {
			continue
		}
		seen[key] = true
		p, err := topo.ShortestPath(ua, ub)
		if err != nil {
			return 0, fmt.Errorf("shard: %w", err)
		}
		total += p.Latency
	}
	return total, nil
}

// parallelFor runs fn(worker, i) for i in [0, n) on up to `workers`
// goroutines with an atomic work-claim counter (the same shape as
// placement's internal pool; duplicated here because it is unexported
// there). worker indexes per-goroutine scratch.
func parallelFor(n, workers int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
