// Boundary-exchange reconciliation (DESIGN.md §11.3): after the
// independent region solves, cross-region A(u,v) terms are whatever the
// chunk cuts left behind. The exchange phase iteratively migrates MATs
// across region cuts while the global lexicographic objective
// (A_max, total cross bytes) strictly improves.
//
// The phase has the shape of a staged collective (ring/reduce-scatter):
// each round, the communicating region pairs are edge-colored into
// stages of disjoint peers; within a stage every pair concurrently
// computes migration proposals against the stage-start snapshot
// (read-only, per-worker scratch, indexed result slots); a barrier
// ends the stage and the proposals are applied serially in
// deterministic pair order, each re-scored exactly against the live
// state with the allocation-free move kernels and re-checked for
// capacity (FitsSwitch), acyclicity, and objective improvement. The
// serial apply makes every worker count produce the same final
// assignment; the strict lexicographic descent makes the whole phase
// terminate (both objective components are non-negative integers).
//
// Scale note: kernels run in a host-compacted index space. A pseudo-
// topology holding only the switches the merged assignment actually
// uses (U hosts, typically 1–2k even at S=10k switches) is compiled
// into a CompiledInstance, so the PairTable/MoveScratch/CycleScratch
// are U²-sized, not S² — the full-topology dense tables never
// materialize (satellite: lazy Clone/Subgraph latency tables).
package shard

import (
	"sort"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

const (
	// candCap bounds candidate MATs per region pair per stage (the
	// heaviest cross-pair contributors are kept).
	candCap = 48
	// targetCap bounds candidate target hosts per MAT (the hosts of its
	// TDG peers within the pair's regions).
	targetCap = 12
	// propCap bounds proposals per pair per stage.
	propCap = 16
)

// hostState is the exchange phase's compacted working state.
type hostState struct {
	ci      *placement.CompiledInstance
	hosts   []network.SwitchID // host index → global switch ID
	hostIdx map[network.SwitchID]int32
	region  []int32 // host index → region
	assignH []int32 // MAT index → host index
	pt      *placement.PairTable
	matsOn  [][]int32 // host index → MAT indices hosted there
	total   int       // total cross bytes matching (assignH, pt)
	amax    int       // Eq. 1 matching pt

	// Weighted-objective state (nil/zero under a structural solve):
	// the host-compacted weight table, the objective selector, the
	// weighted sum matching pt, the current objective value, and the
	// structural ceiling AMaxSlack × the merged solves' A_max.
	wt   *placement.WeightTable
	wobj placement.TrafficObjective
	wsum int64
	wval int64
	acap int
}

// proposal is one candidate migration: MAT x to host `to`.
type proposal struct {
	x, to int32
	class int   // 0 = predicted A_max improvement, 1 = cross-byte reduction
	delta int64 // predicted cross-byte delta (ordering key)
}

// exchange runs the bounded boundary-exchange rounds over assign,
// mutating it in place. rounds > 0.
func (s ShardedGreedy) exchange(g *tdg.Graph, topo *network.Topology, part *network.Partition,
	assign map[string]network.SwitchID, opts placement.Options, rm program.ResourceModel,
	rounds int, st *Stats) error {
	return exchangeAssign(g, topo, part, assign, opts, rm, rounds, s.overlap(), st)
}

// exchangeAssign is the exchange engine, factored free of ShardedGreedy
// so the regional replan escalation (placement.RegionExchangeHook) can
// invoke it on a merged assignment. overlap ≥ 1 sets how many region
// cuts a single migration may cross per round: 1 restricts each pair's
// targets to its own two regions (the classic schedule); k ≥ 2 admits
// targets up to k−1 hops away in the region adjacency graph (the 2-hop
// overlapping neighborhoods of DESIGN.md §14), letting a MAT escape a
// corner where the improving host sits just across a second cut.
// Stage disjointness still holds on the pair endpoints, so concurrent
// proposal passes stay read-only-safe; the serial exact re-scoring
// apply is what keeps overlapping target sets correct.
func exchangeAssign(g *tdg.Graph, topo *network.Topology, part *network.Partition,
	assign map[string]network.SwitchID, opts placement.Options, rm program.ResourceModel,
	rounds, overlap int, st *Stats) error {

	hs, err := buildHostState(g, topo, part, assign, rm)
	if err != nil {
		return err
	}
	if opts.Traffic != nil {
		// topoH is links-free, so the compacted weights must come from
		// the global pair rates (routed on the real topology), not a
		// re-route in host space.
		rates, err := opts.Traffic.PairRates(topo)
		if err != nil {
			return err
		}
		hs.wt = placement.NewWeightTable(rates, int32(topo.NumSwitches())).Compact(hs.hosts)
		hs.wobj = opts.TrafficObjective
		sum, max := hs.wt.Score(hs.pt)
		hs.wsum = sum
		hs.wval = hs.wobj.Pick(sum, max)
		hs.acap = placement.AMaxCap(opts, hs.amax)
	}
	st.Hosts = len(hs.hosts)
	st.AMaxBefore = hs.amax
	st.AMaxAfter = hs.amax

	w := workers(opts)
	scratch := make([]map[int32]int32, w)
	for i := range scratch {
		scratch[i] = make(map[int32]int32, 64)
	}
	msApply := hs.ci.NewMoveScratch()
	cyc := hs.ci.NewCycleScratch()

	// Per-pair allowed-region masks. With overlap == 1 every mask is
	// just the pair itself; wider overlaps expand along the region
	// adjacency graph (computed once — region count is small).
	var regNbr [][]int32
	if overlap > 1 {
		regNbr = regionNeighbors(part)
	}
	allowedCache := map[[2]int32][]bool{}
	allowedFor := func(pr [2]int32) []bool {
		m, ok := allowedCache[pr]
		if !ok {
			m = allowedRegions(pr, regNbr, overlap, part.NumRegions())
			allowedCache[pr] = m
		}
		return m
	}

	for round := 0; round < rounds; round++ {
		if expired(opts) {
			break
		}
		pairs := communicatingPairs(hs)
		if len(pairs) == 0 {
			break
		}
		stages := colorPairs(pairs)
		moved := 0
		for _, stage := range stages {
			if expired(opts) {
				break
			}
			// Exchange step 1: peers publish their boundary state — the
			// per-pair candidate sets and pair-byte contributions read
			// from the stage-start snapshot.
			cands := stageCandidates(hs, stage)
			bneck := bottlenecks(hs)
			// Step 2: concurrent per-pair proposal computation
			// (read-only; indexed slots keep it deterministic).
			allow := make([][]bool, len(stage))
			for i, pr := range stage {
				allow[i] = allowedFor(pr)
			}
			props := make([][]proposal, len(stage))
			parallelFor(len(stage), w, func(worker, i int) {
				props[i] = proposePair(hs, stage[i], cands[i], bneck, allow[i], scratch[worker])
			})
			// Step 3: barrier reached; serial deterministic apply with
			// exact re-scoring.
			for i := range stage {
				moved += hs.applyProposals(g, topo, props[i], rm, msApply, cyc)
			}
		}
		if overlap > 1 {
			// Overlapping escalation also sweeps the global bottleneck
			// cells: the pair schedule only attacks cross-region cuts, but
			// after a regional repair the Eq. 1 argmax can sit inside one
			// region (or on a pair untouched by any cut). The sweep
			// proposes moving each bottleneck cell's contributing MATs
			// next to their TDG peers, wherever those live — the serial
			// exact apply keeps only strict lexicographic improvements, so
			// this is pure extra reach, not a different objective.
			moved += hs.applyProposals(g, topo, bottleneckSweep(hs), rm, msApply, cyc)
		}
		st.Rounds = round + 1
		st.Moves += moved
		if moved == 0 {
			break // converged: no cross-boundary move improves the objective
		}
	}
	st.AMaxAfter = hs.amax

	// Decode the compacted assignment back onto global switch IDs.
	for x, name := range hs.ci.Names {
		assign[name] = hs.hosts[hs.assignH[x]]
	}
	return nil
}

// buildHostState compacts the merged assignment into host index space:
// a links-free pseudo-topology holding copies of just the used
// switches, compiled so every PR 4 kernel runs U-indexed.
func buildHostState(g *tdg.Graph, topo *network.Topology, part *network.Partition,
	assign map[string]network.SwitchID, rm program.ResourceModel) (*hostState, error) {

	used := map[network.SwitchID]bool{}
	for _, u := range assign {
		used[u] = true
	}
	hosts := make([]network.SwitchID, 0, len(used))
	for u := range used {
		hosts = append(hosts, u)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })

	topoH := network.NewTopology(topo.Name + "/hosts")
	hostIdx := make(map[network.SwitchID]int32, len(hosts))
	region := make([]int32, len(hosts))
	for i, gid := range hosts {
		sw, err := topo.Switch(gid)
		if err != nil {
			return nil, err
		}
		topoH.AddSwitch(*sw) // ID rewritten to the dense host index
		hostIdx[gid] = int32(i)
		region[i] = int32(part.RegionOf(gid))
	}
	ci := placement.Compile(g, topoH, rm)
	assignH := make([]int32, len(ci.Names))
	matsOn := make([][]int32, len(hosts))
	for x, name := range ci.Names {
		h := hostIdx[assign[name]]
		assignH[x] = h
		matsOn[h] = append(matsOn[h], int32(x))
	}
	hs := &hostState{
		ci: ci, hosts: hosts, hostIdx: hostIdx, region: region,
		assignH: assignH, pt: ci.NewPairTable(), matsOn: matsOn,
	}
	hs.total = ci.FillPairTable(assignH, hs.pt)
	hs.amax = hs.pt.Max()
	return hs, nil
}

// communicatingPairs lists the normalized region pairs that currently
// exchange metadata bytes, sorted — the peer schedule of one round.
func communicatingPairs(hs *hostState) [][2]int32 {
	seen := map[[2]int32]bool{}
	for ei := range hs.ci.EdgeFrom {
		ua := hs.assignH[hs.ci.EdgeFrom[ei]]
		ub := hs.assignH[hs.ci.EdgeTo[ei]]
		if ua == ub {
			continue
		}
		ra, rb := hs.region[ua], hs.region[ub]
		if ra == rb {
			continue
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		seen[[2]int32{ra, rb}] = true
	}
	out := make([][2]int32, 0, len(seen))
	for pr := range seen {
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i][0] < out[j][0] || (out[i][0] == out[j][0] && out[i][1] < out[j][1])
	})
	return out
}

// colorPairs greedily edge-colors the peer pairs into stages of
// pairwise-disjoint regions — the ring/reduce-scatter schedule: within
// a stage every region talks to at most one peer, so the concurrent
// proposal passes read disjoint boundary states.
func colorPairs(pairs [][2]int32) [][][2]int32 {
	var stages [][][2]int32
	var busy []map[int32]bool
	for _, pr := range pairs {
		placed := false
		for c := range stages {
			if !busy[c][pr[0]] && !busy[c][pr[1]] {
				stages[c] = append(stages[c], pr)
				busy[c][pr[0]], busy[c][pr[1]] = true, true
				placed = true
				break
			}
		}
		if !placed {
			stages = append(stages, [][2]int32{pr})
			busy = append(busy, map[int32]bool{pr[0]: true, pr[1]: true})
		}
	}
	return stages
}

// bottlenecks lists the pair-table cells currently at A_max — the cells
// a move must reduce to improve Eq. 1.
func bottlenecks(hs *hostState) []int32 {
	var out []int32
	for _, k := range hs.pt.Keys() {
		if int(hs.pt.Cells[k]) == hs.amax {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// stageCandidates scans the TDG once and returns, for each pair of the
// stage, its boundary MATs with their cross-pair byte contributions —
// the "assignments and pair-byte contributions" the peers exchange.
func stageCandidates(hs *hostState, stage [][2]int32) []map[int32]int64 {
	idx := make(map[[2]int32]int, len(stage))
	out := make([]map[int32]int64, len(stage))
	for i, pr := range stage {
		idx[pr] = i
		out[i] = map[int32]int64{}
	}
	for ei := range hs.ci.EdgeFrom {
		ua := hs.assignH[hs.ci.EdgeFrom[ei]]
		ub := hs.assignH[hs.ci.EdgeTo[ei]]
		if ua == ub {
			continue
		}
		ra, rb := hs.region[ua], hs.region[ub]
		if ra == rb {
			continue
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		i, ok := idx[[2]int32{ra, rb}]
		if !ok {
			continue
		}
		b := int64(hs.ci.EdgeBytes[ei])
		out[i][hs.ci.EdgeFrom[ei]] += b
		out[i][hs.ci.EdgeTo[ei]] += b
	}
	return out
}

// proposePair computes one pair's ranked migration proposals against
// the stage-start snapshot. Read-only on hs; scratch is this worker's
// delta map. Candidates are the pair's heaviest boundary MATs; targets
// are the hosts of each MAT's TDG peers within the pair's allowed
// regions — the pair itself under overlap 1, its overlapping
// neighborhood otherwise (migrating a MAT next to its communication
// partners is what removes cross-cut bytes). Scoring is the O(deg)
// screen: a move is class 0 when it strictly reduces every bottleneck
// cell and lifts no touched cell to A_max (guaranteed strict A_max
// descent), class 1 when it keeps every touched cell under A_max and
// strictly cuts cross bytes. Exact re-scoring happens at apply time.
func proposePair(hs *hostState, pr [2]int32, contrib map[int32]int64, bneck []int32, allowed []bool, scratch map[int32]int32) []proposal {
	if len(contrib) == 0 {
		return nil
	}
	type weighted struct {
		x int32
		b int64
	}
	cands := make([]weighted, 0, len(contrib))
	for x, b := range contrib {
		cands = append(cands, weighted{x, b})
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].b > cands[j].b || (cands[i].b == cands[j].b && cands[i].x < cands[j].x)
	})
	if len(cands) > candCap {
		cands = cands[:candCap]
	}

	ci := hs.ci
	S := int32(len(hs.hosts))
	var props []proposal
	var targets []int32
	for _, cand := range cands {
		x := cand.x
		cur := hs.assignH[x]
		// Candidate targets: peers' hosts inside the pair's regions.
		targets = targets[:0]
		for _, ei := range ci.Incident[x] {
			peer := ci.EdgeTo[ei]
			if peer == x {
				peer = ci.EdgeFrom[ei]
			}
			h := hs.assignH[peer]
			if h == cur {
				continue
			}
			if !allowed[hs.region[h]] {
				continue
			}
			targets = append(targets, h)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		targets = dedupInt32(targets)
		if len(targets) > targetCap {
			targets = targets[:targetCap]
		}
		for _, c := range targets {
			for k := range scratch {
				delete(scratch, k)
			}
			var crossDelta int64
			for _, ei := range ci.Incident[x] {
				var peer, oldCell, newCell int32
				if ci.EdgeFrom[ei] == x {
					peer = hs.assignH[ci.EdgeTo[ei]]
					oldCell = cur*S + peer
					newCell = c*S + peer
				} else {
					peer = hs.assignH[ci.EdgeFrom[ei]]
					oldCell = peer*S + cur
					newCell = peer*S + c
				}
				b := ci.EdgeBytes[ei]
				if peer != cur {
					scratch[oldCell] -= b
					crossDelta -= int64(b)
				}
				if peer != c {
					scratch[newCell] += b
					crossDelta += int64(b)
				}
			}
			maxTouched := 0
			for cell, d := range scratch {
				if v := int(hs.pt.Cells[cell] + d); v > maxTouched {
					maxTouched = v
				}
			}
			if maxTouched < hs.amax && reducesAll(bneck, scratch) {
				props = append(props, proposal{x: x, to: c, class: 0, delta: crossDelta})
			} else if maxTouched <= hs.amax && crossDelta < 0 {
				props = append(props, proposal{x: x, to: c, class: 1, delta: crossDelta})
			}
		}
	}
	sort.Slice(props, func(i, j int) bool {
		a, b := props[i], props[j]
		if a.class != b.class {
			return a.class < b.class
		}
		if a.delta != b.delta {
			return a.delta < b.delta
		}
		if a.x != b.x {
			return a.x < b.x
		}
		return a.to < b.to
	})
	if len(props) > propCap {
		props = props[:propCap]
	}
	return props
}

// reducesAll reports whether the delta strictly lowers every bottleneck
// cell (necessary and, with maxTouched < amax, sufficient for strict
// A_max descent).
func reducesAll(bneck []int32, delta map[int32]int32) bool {
	if len(bneck) > len(delta) {
		return false
	}
	for _, b := range bneck {
		if delta[b] >= 0 {
			return false
		}
	}
	return true
}

// applyProposals serially re-scores one pair's proposals against the
// live state and commits those that still strictly improve the
// lexicographic objective while staying feasible (capacity on the real
// switch, acyclic contracted graph). Returns accepted count.
func (hs *hostState) applyProposals(g *tdg.Graph, topo *network.Topology, props []proposal,
	rm program.ResourceModel, ms *placement.MoveScratch, cyc *placement.CycleScratch) int {

	accepted := 0
	for _, pr := range props {
		cur := hs.assignH[pr.x]
		if cur == pr.to {
			continue
		}
		namax, ncross := hs.ci.MoveScore(hs.assignH, hs.pt, ms, pr.x, pr.to, hs.total)
		structBetter := namax < hs.amax || (namax == hs.amax && ncross < hs.total)
		var wsum2, wval2 int64
		if hs.wt == nil {
			if !structBetter {
				continue
			}
		} else {
			// Weighted acceptance: strict descent on the lexicographic
			// (W, A_max, cross) key, with the structural A_max capped at
			// the exchange-start ceiling. The proposal classes stay
			// structural — they are a candidate screen, not the gate.
			ws, wm := hs.ci.MoveScoreWeighted(hs.assignH, hs.pt, ms, hs.wt, pr.x, pr.to, hs.wsum)
			wsum2, wval2 = ws, hs.wobj.Pick(ws, wm)
			if namax > hs.acap || wval2 > hs.wval || (wval2 == hs.wval && !structBetter) {
				continue
			}
		}
		// Capacity on the real target switch.
		sw, err := topo.Switch(hs.hosts[pr.to])
		if err != nil {
			continue
		}
		names := make([]string, 0, len(hs.matsOn[pr.to])+1)
		for _, m := range hs.matsOn[pr.to] {
			names = append(names, hs.ci.Names[m])
		}
		names = append(names, hs.ci.Names[pr.x])
		if !placement.FitsSwitch(g, names, sw, rm) {
			continue
		}
		total2 := hs.ci.ApplyMove(hs.assignH, hs.pt, pr.x, pr.to, hs.total)
		if !hs.ci.AssignmentAcyclic(hs.assignH, cyc) {
			hs.total = hs.ci.ApplyMove(hs.assignH, hs.pt, pr.x, cur, total2) // revert
			continue
		}
		hs.total = total2
		hs.amax = namax
		if hs.wt != nil {
			hs.wsum, hs.wval = wsum2, wval2
		}
		hs.moveHost(pr.x, cur, pr.to)
		accepted++
	}
	return accepted
}

// moveHost updates the per-host MAT lists after an accepted migration.
func (hs *hostState) moveHost(x, from, to int32) {
	l := hs.matsOn[from]
	for i, m := range l {
		if m == x {
			hs.matsOn[from] = append(l[:i], l[i+1:]...)
			break
		}
	}
	hs.matsOn[to] = append(hs.matsOn[to], x)
}

// expired reports whether the solve's deadline or context has fired.
func expired(opts placement.Options) bool {
	if opts.Ctx != nil {
		select {
		case <-opts.Ctx.Done():
			return true
		default:
		}
	}
	return !opts.Deadline.IsZero() && time.Now().After(opts.Deadline)
}

// bottleneckSweep proposes migrations for the MATs contributing to the
// current global bottleneck cells, targeting the hosts of their TDG
// peers (the only moves that can delete bytes from an A_max cell).
// Proposals are screened loosely — exact scoring, feasibility, and the
// strict-descent gate all happen in applyProposals — and ordered
// deterministically.
func bottleneckSweep(hs *hostState) []proposal {
	bneck := bottlenecks(hs)
	if len(bneck) == 0 {
		return nil
	}
	inB := make(map[int32]bool, len(bneck))
	for _, k := range bneck {
		inB[k] = true
	}
	ci := hs.ci
	S := int32(len(hs.hosts))
	seen := map[[2]int32]bool{}
	var props []proposal
	propose := func(x int32) {
		cur := hs.assignH[x]
		for _, ei := range ci.Incident[x] {
			peer := ci.EdgeTo[ei]
			if peer == x {
				peer = ci.EdgeFrom[ei]
			}
			h := hs.assignH[peer]
			if h == cur || seen[[2]int32{x, h}] {
				continue
			}
			seen[[2]int32{x, h}] = true
			props = append(props, proposal{x: x, to: h, class: 0, delta: 0})
		}
	}
	for ei := range ci.EdgeFrom {
		ua := hs.assignH[ci.EdgeFrom[ei]]
		ub := hs.assignH[ci.EdgeTo[ei]]
		if ua == ub || !inB[ua*S+ub] {
			continue
		}
		propose(ci.EdgeFrom[ei])
		propose(ci.EdgeTo[ei])
	}
	sort.Slice(props, func(i, j int) bool {
		return props[i].x < props[j].x || (props[i].x == props[j].x && props[i].to < props[j].to)
	})
	if len(props) > 4*propCap {
		props = props[:4*propCap]
	}
	return props
}

// regionNeighbors builds the region adjacency lists (regions joined by
// at least one boundary link), ascending.
func regionNeighbors(part *network.Partition) [][]int32 {
	nbr := make([][]int32, part.NumRegions())
	for _, pr := range part.AdjacentRegions() {
		nbr[pr[0]] = append(nbr[pr[0]], int32(pr[1]))
		nbr[pr[1]] = append(nbr[pr[1]], int32(pr[0]))
	}
	return nbr
}

// allowedRegions returns the mask of regions a pair's migrations may
// target: the pair itself plus every region within overlap−1 hops of
// either endpoint in the region adjacency graph (BFS; regNbr may be
// nil when overlap == 1).
func allowedRegions(pr [2]int32, regNbr [][]int32, overlap, numRegions int) []bool {
	mask := make([]bool, numRegions)
	mask[pr[0]], mask[pr[1]] = true, true
	frontier := []int32{pr[0], pr[1]}
	for hop := 1; hop < overlap && len(frontier) > 0; hop++ {
		var next []int32
		for _, r := range frontier {
			for _, n := range regNbr[r] {
				if !mask[n] {
					mask[n] = true
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return mask
}

// dedupInt32 removes adjacent duplicates from a sorted slice.
func dedupInt32(s []int32) []int32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
