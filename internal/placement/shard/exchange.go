// Boundary-exchange reconciliation (DESIGN.md §11.3): after the
// independent region solves, cross-region A(u,v) terms are whatever the
// chunk cuts left behind. The exchange phase iteratively migrates MATs
// across region cuts while the global lexicographic objective
// (A_max, total cross bytes) strictly improves.
//
// The phase has the shape of a staged collective (ring/reduce-scatter):
// each round, the communicating region pairs are edge-colored into
// stages of disjoint peers; within a stage every pair concurrently
// computes migration proposals against the stage-start snapshot
// (read-only, per-worker scratch, indexed result slots); a barrier
// ends the stage and the proposals are applied serially in
// deterministic pair order, each re-scored exactly against the live
// state with the allocation-free move kernels and re-checked for
// capacity (FitsSwitch), acyclicity, and objective improvement. The
// serial apply makes every worker count produce the same final
// assignment; the strict lexicographic descent makes the whole phase
// terminate (both objective components are non-negative integers).
//
// Scale note: kernels run in a host-compacted index space. A pseudo-
// topology holding only the switches the merged assignment actually
// uses (U hosts, typically 1–2k even at S=10k switches) is compiled
// into a CompiledInstance, so the PairTable/MoveScratch/CycleScratch
// are U²-sized, not S² — the full-topology dense tables never
// materialize (satellite: lazy Clone/Subgraph latency tables).
package shard

import (
	"sort"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

const (
	// candCap bounds candidate MATs per region pair per stage (the
	// heaviest cross-pair contributors are kept).
	candCap = 48
	// targetCap bounds candidate target hosts per MAT (the hosts of its
	// TDG peers within the pair's regions).
	targetCap = 12
	// propCap bounds proposals per pair per stage.
	propCap = 16
)

// hostState is the exchange phase's compacted working state.
type hostState struct {
	ci      *placement.CompiledInstance
	hosts   []network.SwitchID // host index → global switch ID
	hostIdx map[network.SwitchID]int32
	region  []int32 // host index → region
	assignH []int32 // MAT index → host index
	pt      *placement.PairTable
	matsOn  [][]int32 // host index → MAT indices hosted there
	total   int       // total cross bytes matching (assignH, pt)
	amax    int       // Eq. 1 matching pt

	// Weighted-objective state (nil/zero under a structural solve):
	// the host-compacted weight table, the objective selector, the
	// weighted sum matching pt, the current objective value, and the
	// structural ceiling AMaxSlack × the merged solves' A_max.
	wt   *placement.WeightTable
	wobj placement.TrafficObjective
	wsum int64
	wval int64
	acap int
}

// proposal is one candidate migration: MAT x to host `to`.
type proposal struct {
	x, to int32
	class int   // 0 = predicted A_max improvement, 1 = cross-byte reduction
	delta int64 // predicted cross-byte delta (ordering key)
}

// exchange runs the bounded boundary-exchange rounds over assign,
// mutating it in place. rounds > 0.
func (s ShardedGreedy) exchange(g *tdg.Graph, topo *network.Topology, part *network.Partition,
	assign map[string]network.SwitchID, opts placement.Options, rm program.ResourceModel,
	rounds int, st *Stats) error {

	hs, err := buildHostState(g, topo, part, assign, rm)
	if err != nil {
		return err
	}
	if opts.Traffic != nil {
		// topoH is links-free, so the compacted weights must come from
		// the global pair rates (routed on the real topology), not a
		// re-route in host space.
		rates, err := opts.Traffic.PairRates(topo)
		if err != nil {
			return err
		}
		hs.wt = placement.NewWeightTable(rates, int32(topo.NumSwitches())).Compact(hs.hosts)
		hs.wobj = opts.TrafficObjective
		sum, max := hs.wt.Score(hs.pt)
		hs.wsum = sum
		hs.wval = hs.wobj.Pick(sum, max)
		hs.acap = placement.AMaxCap(opts, hs.amax)
	}
	st.Hosts = len(hs.hosts)
	st.AMaxBefore = hs.amax
	st.AMaxAfter = hs.amax

	w := workers(opts)
	scratch := make([]map[int32]int32, w)
	for i := range scratch {
		scratch[i] = make(map[int32]int32, 64)
	}
	msApply := hs.ci.NewMoveScratch()
	cyc := hs.ci.NewCycleScratch()

	for round := 0; round < rounds; round++ {
		if expired(opts) {
			break
		}
		pairs := communicatingPairs(hs)
		if len(pairs) == 0 {
			break
		}
		stages := colorPairs(pairs)
		moved := 0
		for _, stage := range stages {
			if expired(opts) {
				break
			}
			// Exchange step 1: peers publish their boundary state — the
			// per-pair candidate sets and pair-byte contributions read
			// from the stage-start snapshot.
			cands := stageCandidates(hs, stage)
			bneck := bottlenecks(hs)
			// Step 2: concurrent per-pair proposal computation
			// (read-only; indexed slots keep it deterministic).
			props := make([][]proposal, len(stage))
			parallelFor(len(stage), w, func(worker, i int) {
				props[i] = proposePair(hs, stage[i], cands[i], bneck, scratch[worker])
			})
			// Step 3: barrier reached; serial deterministic apply with
			// exact re-scoring.
			for i := range stage {
				moved += hs.applyProposals(g, topo, props[i], rm, msApply, cyc)
			}
		}
		st.Rounds = round + 1
		st.Moves += moved
		if moved == 0 {
			break // converged: no cross-boundary move improves the objective
		}
	}
	st.AMaxAfter = hs.amax

	// Decode the compacted assignment back onto global switch IDs.
	for x, name := range hs.ci.Names {
		assign[name] = hs.hosts[hs.assignH[x]]
	}
	return nil
}

// buildHostState compacts the merged assignment into host index space:
// a links-free pseudo-topology holding copies of just the used
// switches, compiled so every PR 4 kernel runs U-indexed.
func buildHostState(g *tdg.Graph, topo *network.Topology, part *network.Partition,
	assign map[string]network.SwitchID, rm program.ResourceModel) (*hostState, error) {

	used := map[network.SwitchID]bool{}
	for _, u := range assign {
		used[u] = true
	}
	hosts := make([]network.SwitchID, 0, len(used))
	for u := range used {
		hosts = append(hosts, u)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })

	topoH := network.NewTopology(topo.Name + "/hosts")
	hostIdx := make(map[network.SwitchID]int32, len(hosts))
	region := make([]int32, len(hosts))
	for i, gid := range hosts {
		sw, err := topo.Switch(gid)
		if err != nil {
			return nil, err
		}
		topoH.AddSwitch(*sw) // ID rewritten to the dense host index
		hostIdx[gid] = int32(i)
		region[i] = int32(part.RegionOf(gid))
	}
	ci := placement.Compile(g, topoH, rm)
	assignH := make([]int32, len(ci.Names))
	matsOn := make([][]int32, len(hosts))
	for x, name := range ci.Names {
		h := hostIdx[assign[name]]
		assignH[x] = h
		matsOn[h] = append(matsOn[h], int32(x))
	}
	hs := &hostState{
		ci: ci, hosts: hosts, hostIdx: hostIdx, region: region,
		assignH: assignH, pt: ci.NewPairTable(), matsOn: matsOn,
	}
	hs.total = ci.FillPairTable(assignH, hs.pt)
	hs.amax = hs.pt.Max()
	return hs, nil
}

// communicatingPairs lists the normalized region pairs that currently
// exchange metadata bytes, sorted — the peer schedule of one round.
func communicatingPairs(hs *hostState) [][2]int32 {
	seen := map[[2]int32]bool{}
	for ei := range hs.ci.EdgeFrom {
		ua := hs.assignH[hs.ci.EdgeFrom[ei]]
		ub := hs.assignH[hs.ci.EdgeTo[ei]]
		if ua == ub {
			continue
		}
		ra, rb := hs.region[ua], hs.region[ub]
		if ra == rb {
			continue
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		seen[[2]int32{ra, rb}] = true
	}
	out := make([][2]int32, 0, len(seen))
	for pr := range seen {
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i][0] < out[j][0] || (out[i][0] == out[j][0] && out[i][1] < out[j][1])
	})
	return out
}

// colorPairs greedily edge-colors the peer pairs into stages of
// pairwise-disjoint regions — the ring/reduce-scatter schedule: within
// a stage every region talks to at most one peer, so the concurrent
// proposal passes read disjoint boundary states.
func colorPairs(pairs [][2]int32) [][][2]int32 {
	var stages [][][2]int32
	var busy []map[int32]bool
	for _, pr := range pairs {
		placed := false
		for c := range stages {
			if !busy[c][pr[0]] && !busy[c][pr[1]] {
				stages[c] = append(stages[c], pr)
				busy[c][pr[0]], busy[c][pr[1]] = true, true
				placed = true
				break
			}
		}
		if !placed {
			stages = append(stages, [][2]int32{pr})
			busy = append(busy, map[int32]bool{pr[0]: true, pr[1]: true})
		}
	}
	return stages
}

// bottlenecks lists the pair-table cells currently at A_max — the cells
// a move must reduce to improve Eq. 1.
func bottlenecks(hs *hostState) []int32 {
	var out []int32
	for _, k := range hs.pt.Keys() {
		if int(hs.pt.Cells[k]) == hs.amax {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// stageCandidates scans the TDG once and returns, for each pair of the
// stage, its boundary MATs with their cross-pair byte contributions —
// the "assignments and pair-byte contributions" the peers exchange.
func stageCandidates(hs *hostState, stage [][2]int32) []map[int32]int64 {
	idx := make(map[[2]int32]int, len(stage))
	out := make([]map[int32]int64, len(stage))
	for i, pr := range stage {
		idx[pr] = i
		out[i] = map[int32]int64{}
	}
	for ei := range hs.ci.EdgeFrom {
		ua := hs.assignH[hs.ci.EdgeFrom[ei]]
		ub := hs.assignH[hs.ci.EdgeTo[ei]]
		if ua == ub {
			continue
		}
		ra, rb := hs.region[ua], hs.region[ub]
		if ra == rb {
			continue
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		i, ok := idx[[2]int32{ra, rb}]
		if !ok {
			continue
		}
		b := int64(hs.ci.EdgeBytes[ei])
		out[i][hs.ci.EdgeFrom[ei]] += b
		out[i][hs.ci.EdgeTo[ei]] += b
	}
	return out
}

// proposePair computes one pair's ranked migration proposals against
// the stage-start snapshot. Read-only on hs; scratch is this worker's
// delta map. Candidates are the pair's heaviest boundary MATs; targets
// are the hosts of each MAT's TDG peers within the pair's regions
// (migrating a MAT next to its communication partners is what removes
// cross-cut bytes). Scoring is the O(deg) screen: a move is class 0
// when it strictly reduces every bottleneck cell and lifts no touched
// cell to A_max (guaranteed strict A_max descent), class 1 when it
// keeps every touched cell under A_max and strictly cuts cross bytes.
// Exact re-scoring happens at apply time.
func proposePair(hs *hostState, pr [2]int32, contrib map[int32]int64, bneck []int32, scratch map[int32]int32) []proposal {
	if len(contrib) == 0 {
		return nil
	}
	type weighted struct {
		x int32
		b int64
	}
	cands := make([]weighted, 0, len(contrib))
	for x, b := range contrib {
		cands = append(cands, weighted{x, b})
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].b > cands[j].b || (cands[i].b == cands[j].b && cands[i].x < cands[j].x)
	})
	if len(cands) > candCap {
		cands = cands[:candCap]
	}

	ci := hs.ci
	S := int32(len(hs.hosts))
	var props []proposal
	var targets []int32
	for _, cand := range cands {
		x := cand.x
		cur := hs.assignH[x]
		// Candidate targets: peers' hosts inside the pair's regions.
		targets = targets[:0]
		for _, ei := range ci.Incident[x] {
			peer := ci.EdgeTo[ei]
			if peer == x {
				peer = ci.EdgeFrom[ei]
			}
			h := hs.assignH[peer]
			if h == cur {
				continue
			}
			if r := hs.region[h]; r != pr[0] && r != pr[1] {
				continue
			}
			targets = append(targets, h)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		targets = dedupInt32(targets)
		if len(targets) > targetCap {
			targets = targets[:targetCap]
		}
		for _, c := range targets {
			for k := range scratch {
				delete(scratch, k)
			}
			var crossDelta int64
			for _, ei := range ci.Incident[x] {
				var peer, oldCell, newCell int32
				if ci.EdgeFrom[ei] == x {
					peer = hs.assignH[ci.EdgeTo[ei]]
					oldCell = cur*S + peer
					newCell = c*S + peer
				} else {
					peer = hs.assignH[ci.EdgeFrom[ei]]
					oldCell = peer*S + cur
					newCell = peer*S + c
				}
				b := ci.EdgeBytes[ei]
				if peer != cur {
					scratch[oldCell] -= b
					crossDelta -= int64(b)
				}
				if peer != c {
					scratch[newCell] += b
					crossDelta += int64(b)
				}
			}
			maxTouched := 0
			for cell, d := range scratch {
				if v := int(hs.pt.Cells[cell] + d); v > maxTouched {
					maxTouched = v
				}
			}
			if maxTouched < hs.amax && reducesAll(bneck, scratch) {
				props = append(props, proposal{x: x, to: c, class: 0, delta: crossDelta})
			} else if maxTouched <= hs.amax && crossDelta < 0 {
				props = append(props, proposal{x: x, to: c, class: 1, delta: crossDelta})
			}
		}
	}
	sort.Slice(props, func(i, j int) bool {
		a, b := props[i], props[j]
		if a.class != b.class {
			return a.class < b.class
		}
		if a.delta != b.delta {
			return a.delta < b.delta
		}
		if a.x != b.x {
			return a.x < b.x
		}
		return a.to < b.to
	})
	if len(props) > propCap {
		props = props[:propCap]
	}
	return props
}

// reducesAll reports whether the delta strictly lowers every bottleneck
// cell (necessary and, with maxTouched < amax, sufficient for strict
// A_max descent).
func reducesAll(bneck []int32, delta map[int32]int32) bool {
	if len(bneck) > len(delta) {
		return false
	}
	for _, b := range bneck {
		if delta[b] >= 0 {
			return false
		}
	}
	return true
}

// applyProposals serially re-scores one pair's proposals against the
// live state and commits those that still strictly improve the
// lexicographic objective while staying feasible (capacity on the real
// switch, acyclic contracted graph). Returns accepted count.
func (hs *hostState) applyProposals(g *tdg.Graph, topo *network.Topology, props []proposal,
	rm program.ResourceModel, ms *placement.MoveScratch, cyc *placement.CycleScratch) int {

	accepted := 0
	for _, pr := range props {
		cur := hs.assignH[pr.x]
		if cur == pr.to {
			continue
		}
		namax, ncross := hs.ci.MoveScore(hs.assignH, hs.pt, ms, pr.x, pr.to, hs.total)
		structBetter := namax < hs.amax || (namax == hs.amax && ncross < hs.total)
		var wsum2, wval2 int64
		if hs.wt == nil {
			if !structBetter {
				continue
			}
		} else {
			// Weighted acceptance: strict descent on the lexicographic
			// (W, A_max, cross) key, with the structural A_max capped at
			// the exchange-start ceiling. The proposal classes stay
			// structural — they are a candidate screen, not the gate.
			ws, wm := hs.ci.MoveScoreWeighted(hs.assignH, hs.pt, ms, hs.wt, pr.x, pr.to, hs.wsum)
			wsum2, wval2 = ws, hs.wobj.Pick(ws, wm)
			if namax > hs.acap || wval2 > hs.wval || (wval2 == hs.wval && !structBetter) {
				continue
			}
		}
		// Capacity on the real target switch.
		sw, err := topo.Switch(hs.hosts[pr.to])
		if err != nil {
			continue
		}
		names := make([]string, 0, len(hs.matsOn[pr.to])+1)
		for _, m := range hs.matsOn[pr.to] {
			names = append(names, hs.ci.Names[m])
		}
		names = append(names, hs.ci.Names[pr.x])
		if !placement.FitsSwitch(g, names, sw, rm) {
			continue
		}
		total2 := hs.ci.ApplyMove(hs.assignH, hs.pt, pr.x, pr.to, hs.total)
		if !hs.ci.AssignmentAcyclic(hs.assignH, cyc) {
			hs.total = hs.ci.ApplyMove(hs.assignH, hs.pt, pr.x, cur, total2) // revert
			continue
		}
		hs.total = total2
		hs.amax = namax
		if hs.wt != nil {
			hs.wsum, hs.wval = wsum2, wval2
		}
		hs.moveHost(pr.x, cur, pr.to)
		accepted++
	}
	return accepted
}

// moveHost updates the per-host MAT lists after an accepted migration.
func (hs *hostState) moveHost(x, from, to int32) {
	l := hs.matsOn[from]
	for i, m := range l {
		if m == x {
			hs.matsOn[from] = append(l[:i], l[i+1:]...)
			break
		}
	}
	hs.matsOn[to] = append(hs.matsOn[to], x)
}

// expired reports whether the solve's deadline or context has fired.
func expired(opts placement.Options) bool {
	if opts.Ctx != nil {
		select {
		case <-opts.Ctx.Done():
			return true
		default:
		}
	}
	return !opts.Deadline.IsZero() && time.Now().After(opts.Deadline)
}

// dedupInt32 removes adjacent duplicates from a sorted slice.
func dedupInt32(s []int32) []int32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
