// Package placement is the core of Hermes: the optimization framework
// of paper §V. It places every MAT of a merged TDG onto pipeline stages
// of programmable switches (decision variables x(a,i,u)), chooses
// inter-switch paths (y(u,v,p)), and evaluates the three objectives —
// the per-packet byte overhead A_max (Eq. 1), the end-to-end latency
// t_e2e (Eq. 2), and the occupied-switch count Q_occ (Eq. 3) — under
// the ε-constraint scheme of problem P#1.
//
// Three solvers are provided:
//
//   - Greedy: the paper's Algorithm 2 heuristic (near-optimal, fast),
//   - Exact: a specialized branch & bound that proves optimality on
//     small instances (the paper's Gurobi-backed "Optimal"),
//   - ILP: the literal MILP encoding of P#1 solved with internal/milp,
//     kept for the ILP-based comparison frameworks and for
//     demonstrating the formulation's blow-up (Exp#3).
package placement

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// SwitchLabel renders a switch identifier together with its
// human-readable name, e.g. `switch 3 ("core2")`. Validation errors
// and the lint engine share it so diagnostics always carry the
// offending switch identity.
func SwitchLabel(t *network.Topology, id network.SwitchID) string {
	if t != nil {
		if sw, err := t.Switch(id); err == nil && sw.Name != "" {
			return fmt.Sprintf("switch %d (%q)", id, sw.Name)
		}
	}
	return fmt.Sprintf("switch %d", id)
}

// StagePlacement records where one MAT landed: a switch plus the
// half-open run of stages [Start, End] it occupies, with the resource
// amount consumed in each stage. Start corresponds to ρ_begin and End
// to ρ_end in Eq. 8.
type StagePlacement struct {
	Switch network.SwitchID
	// Start and End are 0-based stage indexes, inclusive.
	Start, End int
	// PerStage[i] is the resource consumed in stage Start+i; this is
	// R(a,i,u) restricted to the occupied stages.
	PerStage []float64
}

// Total returns the summed resource consumption R(a).
func (sp StagePlacement) Total() float64 {
	t := 0.0
	for _, v := range sp.PerStage {
		t += v
	}
	return t
}

// RouteKey identifies an ordered communicating switch pair.
type RouteKey struct {
	From, To network.SwitchID
}

// Plan is a complete deployment decision.
type Plan struct {
	// Graph is the merged TDG the plan deploys.
	Graph *tdg.Graph
	// Topo is the substrate network.
	Topo *network.Topology
	// Assignments maps MAT name to its placement (the x variables).
	Assignments map[string]StagePlacement
	// Routes maps each communicating ordered switch pair to the chosen
	// path (the y variables).
	Routes map[RouteKey]network.Path
	// SolverName and SolveTime record provenance.
	SolverName string
	SolveTime  time.Duration
	// Proven reports whether the solver proved optimality.
	Proven bool

	// pairCache memoizes PairBytes between mutations. It is plain
	// fields, not a mutex-guarded box, so plans stay value-copyable;
	// the cached map must never be mutated in place. Callers that
	// mutate Assignments directly must call InvalidateCache (Validate
	// and the lint engine re-derive defensively at entry).
	pairCache   map[RouteKey]int
	pairCacheOK bool
}

// InvalidateCache drops memoized derived state after a direct mutation
// of the plan's assignments.
func (p *Plan) InvalidateCache() {
	p.pairCache = nil
	p.pairCacheOK = false
}

// SwitchOf returns the switch hosting the named MAT.
func (p *Plan) SwitchOf(name string) (network.SwitchID, bool) {
	sp, ok := p.Assignments[name]
	return sp.Switch, ok
}

// UsedSwitches returns the distinct switches hosting at least one MAT,
// ascending.
func (p *Plan) UsedSwitches() []network.SwitchID {
	seen := map[network.SwitchID]bool{}
	for _, sp := range p.Assignments {
		seen[sp.Switch] = true
	}
	out := make([]network.SwitchID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// QOcc is Eq. 3: the number of occupied programmable switches.
func (p *Plan) QOcc() int { return len(p.UsedSwitches()) }

// CrossEdges returns the TDG edges whose endpoints sit on different
// switches — the edges that cost per-packet bytes.
func (p *Plan) CrossEdges() []*tdg.Edge {
	var out []*tdg.Edge
	for _, e := range p.Graph.EdgeList() {
		ua, oka := p.SwitchOf(e.From)
		ub, okb := p.SwitchOf(e.To)
		if oka && okb && ua != ub {
			out = append(out, e)
		}
	}
	return out
}

// PairBytes aggregates Σ A(a,b) per ordered communicating switch pair.
// The map is memoized on the plan (AMax, TE2E, WireBytes, and lint's
// HL101–HL111 checks all re-derive it otherwise) and must be treated
// as read-only; see InvalidateCache.
func (p *Plan) PairBytes() map[RouteKey]int {
	if p.pairCacheOK {
		return p.pairCache
	}
	out := p.PairBytesUncached()
	p.pairCache = out
	p.pairCacheOK = true
	return out
}

// PairBytesUncached recomputes the pair map from the assignments on
// every call — the pre-memoization behavior, retained as the map-based
// reference for the compiled kernels' differential tests and
// benchmarks.
func (p *Plan) PairBytesUncached() map[RouteKey]int {
	out := map[RouteKey]int{}
	for _, e := range p.CrossEdges() {
		ua, _ := p.SwitchOf(e.From)
		ub, _ := p.SwitchOf(e.To)
		out[RouteKey{From: ua, To: ub}] += e.MetadataBytes
	}
	return out
}

// AMax is Eq. 1: the maximum metadata bytes delivered between any
// ordered pair of programmable switches.
func (p *Plan) AMax() int {
	max := 0
	for _, b := range p.PairBytes() {
		if b > max {
			max = b
		}
	}
	return max
}

// TotalCrossBytes sums A(a,b) over all cross-switch edges; a secondary
// diagnostic (total coordination traffic added per packet).
func (p *Plan) TotalCrossBytes() int {
	t := 0
	for _, e := range p.CrossEdges() {
		t += e.MetadataBytes
	}
	return t
}

// TE2E is Eq. 2: the summed latency of the chosen paths between
// communicating switch pairs.
func (p *Plan) TE2E() time.Duration {
	var total time.Duration
	seen := map[RouteKey]bool{}
	for key := range p.PairBytes() {
		if seen[key] {
			continue
		}
		seen[key] = true
		if path, ok := p.Routes[key]; ok {
			total += path.Latency
		}
	}
	return total
}

// WireBytes measures the accumulated coordination bytes a packet
// carries on each traversal link when metadata is forwarded along the
// plan's routes; the maximum over links is a physically-grounded
// counterpart of AMax that accounts for transit accumulation.
func (p *Plan) WireBytes() map[RouteKey]int {
	out := map[RouteKey]int{}
	for key, bytes := range p.PairBytes() {
		path, ok := p.Routes[key]
		if !ok {
			continue
		}
		for i := 0; i+1 < len(path.Switches); i++ {
			hop := RouteKey{From: path.Switches[i], To: path.Switches[i+1]}
			out[hop] += bytes
		}
	}
	return out
}

// MaxWireBytes returns the maximum of WireBytes, or 0.
func (p *Plan) MaxWireBytes() int {
	max := 0
	for _, b := range p.WireBytes() {
		if b > max {
			max = b
		}
	}
	return max
}

// switchDAGOrder contracts the TDG by switch assignment and returns a
// topological order of the used switches; it fails if the contracted
// graph is cyclic (no single packet route can respect all dependencies).
func (p *Plan) switchDAGOrder() ([]network.SwitchID, error) {
	adj := map[network.SwitchID]map[network.SwitchID]bool{}
	nodes := map[network.SwitchID]bool{}
	for _, sp := range p.Assignments {
		nodes[sp.Switch] = true
	}
	for _, e := range p.CrossEdges() {
		ua, _ := p.SwitchOf(e.From)
		ub, _ := p.SwitchOf(e.To)
		if adj[ua] == nil {
			adj[ua] = map[network.SwitchID]bool{}
		}
		adj[ua][ub] = true
	}
	indeg := map[network.SwitchID]int{}
	for n := range nodes {
		indeg[n] = 0
	}
	for _, tos := range adj {
		for to := range tos {
			indeg[to]++
		}
	}
	var ready []network.SwitchID
	for n := range nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	var out []network.SwitchID
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		var next []network.SwitchID
		for to := range adj[n] {
			indeg[to]--
			if indeg[to] == 0 {
				next = append(next, to)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		ready = append(ready, next...)
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	}
	if len(out) != len(nodes) {
		placed := make(map[network.SwitchID]bool, len(out))
		for _, id := range out {
			placed[id] = true
		}
		var stuck []string
		for id := range nodes {
			if !placed[id] {
				stuck = append(stuck, SwitchLabel(p.Topo, id))
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("placement: switch-level dependency graph is cyclic among %s",
			strings.Join(stuck, ", "))
	}
	return out, nil
}

// SwitchOrder returns the order in which packets must visit the used
// switches.
func (p *Plan) SwitchOrder() ([]network.SwitchID, error) {
	return p.switchDAGOrder()
}

// Validate checks every constraint of P#1 against the plan:
// node deployment (Eq. 6), edge deployment across switches (Eq. 7),
// intra-switch stage ordering (Eq. 8), per-stage resource capacity
// (Eq. 9), and the ε bounds when positive.
func (p *Plan) Validate(rm program.ResourceModel, eps1 time.Duration, eps2 int) error {
	if p.Graph == nil || p.Topo == nil {
		return fmt.Errorf("placement: plan missing graph or topology")
	}
	// Tests (and replans) mutate Assignments in place before
	// re-validating; never judge a tampered plan through a stale memo.
	p.InvalidateCache()
	// Eq. 6: every MAT deployed, on a programmable switch, within the
	// stage range, with the full requirement placed.
	for _, n := range p.Graph.Nodes() {
		sp, ok := p.Assignments[n.Name()]
		if !ok {
			return fmt.Errorf("placement: MAT %q not deployed (Eq. 6)", n.Name())
		}
		sw, err := p.Topo.Switch(sp.Switch)
		if err != nil {
			return fmt.Errorf("placement: MAT %q: %w", n.Name(), err)
		}
		if !sw.Programmable {
			return fmt.Errorf("placement: MAT %q on non-programmable switch %q", n.Name(), sw.Name)
		}
		// Fault overlay: a down switch hosts nothing. Paired with lint
		// rule HL112, which restates this check independently.
		if p.Topo.SwitchIsDown(sp.Switch) {
			return fmt.Errorf("placement: MAT %q on down switch %q", n.Name(), sw.Name)
		}
		if sp.Start < 0 || sp.End >= sw.Stages || sp.Start > sp.End {
			return fmt.Errorf("placement: MAT %q on %s has stage range [%d,%d] outside 0..%d",
				n.Name(), SwitchLabel(p.Topo, sp.Switch), sp.Start, sp.End, sw.Stages-1)
		}
		if len(sp.PerStage) != sp.End-sp.Start+1 {
			return fmt.Errorf("placement: MAT %q per-stage slice length %d != range %d",
				n.Name(), len(sp.PerStage), sp.End-sp.Start+1)
		}
		req := rm.Requirement(n.MAT)
		if math.Abs(sp.Total()-req) > 1e-6 {
			return fmt.Errorf("placement: MAT %q places %g of required %g resources",
				n.Name(), sp.Total(), req)
		}
	}
	// Eq. 9: per-stage capacity.
	used := map[network.SwitchID][]float64{}
	for name, sp := range p.Assignments {
		sw, err := p.Topo.Switch(sp.Switch)
		if err != nil {
			return err
		}
		if used[sp.Switch] == nil {
			used[sp.Switch] = make([]float64, sw.Stages)
		}
		for i, amt := range sp.PerStage {
			if amt < -1e-12 {
				return fmt.Errorf("placement: MAT %q has negative stage amount", name)
			}
			used[sp.Switch][sp.Start+i] += amt
		}
	}
	for id, stages := range used {
		sw, _ := p.Topo.Switch(id)
		for i, amt := range stages {
			if amt > sw.StageCapacity+1e-6 {
				return fmt.Errorf("placement: switch %q stage %d overcommitted: %g > %g (Eq. 9)",
					sw.Name, i, amt, sw.StageCapacity)
			}
		}
	}
	// Eq. 7 and Eq. 8 per edge.
	for _, e := range p.Graph.EdgeList() {
		sa := p.Assignments[e.From]
		sb := p.Assignments[e.To]
		if sa.Switch == sb.Switch {
			if sa.End >= sb.Start {
				return fmt.Errorf("placement: co-located dependency %s->%s violates stage order: end %d >= start %d (Eq. 8)",
					e.From, e.To, sa.End, sb.Start)
			}
			continue
		}
		key := RouteKey{From: sa.Switch, To: sb.Switch}
		path, ok := p.Routes[key]
		if !ok {
			return fmt.Errorf("placement: cross-switch dependency %s->%s has no route %s -> %s (Eq. 7)",
				e.From, e.To, SwitchLabel(p.Topo, sa.Switch), SwitchLabel(p.Topo, sb.Switch))
		}
		if len(path.Switches) == 0 || path.Switches[0] != sa.Switch || path.Switches[len(path.Switches)-1] != sb.Switch {
			return fmt.Errorf("placement: route for %s->%s does not connect %s to %s",
				e.From, e.To, SwitchLabel(p.Topo, sa.Switch), SwitchLabel(p.Topo, sb.Switch))
		}
	}
	// Global ordering feasibility.
	if _, err := p.switchDAGOrder(); err != nil {
		return err
	}
	// ε bounds.
	if eps1 > 0 {
		if got := p.TE2E(); got > eps1 {
			return fmt.Errorf("placement: t_e2e %v exceeds ε1 %v (Eq. 4)", got, eps1)
		}
	}
	if eps2 > 0 {
		if got := p.QOcc(); got > eps2 {
			return fmt.Errorf("placement: Q_occ %d exceeds ε2 %d (Eq. 5)", got, eps2)
		}
	}
	return nil
}

// Summary is a compact textual report of the plan's objectives.
func (p *Plan) Summary() string {
	return fmt.Sprintf("%s: A_max=%dB cross=%dB Q_occ=%d t_e2e=%v solve=%v",
		p.SolverName, p.AMax(), p.TotalCrossBytes(), p.QOcc(), p.TE2E(), p.SolveTime)
}
