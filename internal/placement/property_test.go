package placement

import (
	"math/rand"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// randomDAG builds a random annotated TDG with n MATs.
func randomDAG(rng *rand.Rand, n int) *tdg.Graph {
	g := tdg.New()
	names := make([]string, n)
	for i := range names {
		names[i] = "m" + string(rune('A'+i))
		if err := g.AddNode(fixedMAT(names[i], 0.1+0.3*rng.Float64())); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.35 {
				if err := g.AddEdge(names[i], names[j], tdg.DepMatch, rng.Intn(13)); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// randomTopo builds a random connected topology with p programmable
// switches.
func randomTopo(rng *rand.Rand, p int) *network.Topology {
	spec := network.SwitchSpec{
		Stages:               4 + rng.Intn(4),
		StageCapacity:        0.3 + 0.3*rng.Float64(),
		TransitLatency:       time.Microsecond,
		LinkLatencyMin:       time.Millisecond,
		LinkLatencyMax:       5 * time.Millisecond,
		ProgrammableFraction: 1.0,
	}
	nodes := p + rng.Intn(3)
	edges := nodes - 1 + rng.Intn(3)
	max := nodes * (nodes - 1) / 2
	if edges > max {
		edges = max
	}
	tp, err := network.RandomWAN("prop", nodes, edges, spec, rng.Int63())
	if err != nil {
		panic(err)
	}
	return tp
}

// TestGreedyPlansAlwaysValid: whatever random instance the greedy
// solves, the result satisfies every constraint of P#1.
func TestGreedyPlansAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	solved := 0
	for trial := 0; trial < 60; trial++ {
		g := randomDAG(rng, 3+rng.Intn(8))
		tp := randomTopo(rng, 2+rng.Intn(4))
		plan, err := (Greedy{ImproveBudget: 50 * time.Millisecond}).Solve(g, tp, Options{})
		if err != nil {
			continue // instance may be genuinely infeasible
		}
		solved++
		if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
			t.Fatalf("trial %d: greedy plan invalid: %v\n%s", trial, err, g.DOT())
		}
		// The wire view never loses bytes relative to the pair view.
		if plan.MaxWireBytes() < plan.AMax() && plan.AMax() > 0 && len(plan.Routes) > 0 {
			t.Fatalf("trial %d: wire max %d below pair max %d", trial, plan.MaxWireBytes(), plan.AMax())
		}
	}
	if solved < 30 {
		t.Fatalf("only %d of 60 random instances solved; generator too harsh", solved)
	}
}

// TestSplitTDGPartitionInvariants: segments partition the node set and
// all edges flow forward across segments.
func TestSplitTDGPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		g := randomDAG(rng, 4+rng.Intn(10))
		sw := &network.Switch{
			Programmable: true, Stages: 4,
			StageCapacity: 0.3 + 0.2*rng.Float64(),
		}
		segs, err := SplitTDG(g, sw, program.DefaultResourceModel)
		if err != nil {
			continue
		}
		segOf := map[string]int{}
		total := 0
		for i, seg := range segs {
			for _, name := range seg.NodeNames() {
				if prev, dup := segOf[name]; dup {
					t.Fatalf("trial %d: MAT %q in segments %d and %d", trial, name, prev, i)
				}
				segOf[name] = i
				total++
			}
			// Every segment must satisfy the capacity test.
			if !CapacityFits(seg, program.DefaultResourceModel, sw) {
				t.Fatalf("trial %d: segment %d exceeds capacity", trial, i)
			}
		}
		if total != g.NumNodes() {
			t.Fatalf("trial %d: segments cover %d of %d MATs", trial, total, g.NumNodes())
		}
		for _, e := range g.Edges() {
			if segOf[e.From] > segOf[e.To] {
				t.Fatalf("trial %d: edge %s->%s goes backward (%d -> %d)",
					trial, e.From, e.To, segOf[e.From], segOf[e.To])
			}
		}
	}
}

// TestCapacitySplitMinimality: the DP split never uses more segments
// than the greedy first-fill bound, and matches brute force on small
// instances.
func TestCapacitySplitMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		g := randomDAG(rng, n)
		sw := &network.Switch{Programmable: true, Stages: 6, StageCapacity: 0.4}
		segs, err := capacitySplit(g, sw, program.DefaultResourceModel)
		if err != nil {
			continue
		}
		// Brute force minimal contiguous group count over the same topo
		// order, capacity-sum feasibility only (a lower bound on the
		// pack-feasible optimum, so dp must be >= it; and dp must be <=
		// first-fill).
		order, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]float64, len(order))
		for i, name := range order {
			node, _ := g.Node(name)
			reqs[i] = program.DefaultResourceModel.Requirement(node.MAT)
		}
		lower := bruteMinGroups(reqs, sw.Capacity())
		if len(segs) < lower {
			t.Fatalf("trial %d: dp used %d segments, below brute-force lower bound %d", trial, len(segs), lower)
		}
		// First-fill upper bound with pack feasibility.
		ff := 1
		var cur []string
		for _, name := range order {
			cand := append(append([]string(nil), cur...), name)
			if FitsSwitch(g, cand, sw, program.DefaultResourceModel) {
				cur = cand
				continue
			}
			ff++
			cur = []string{name}
		}
		if len(segs) > ff {
			t.Fatalf("trial %d: dp used %d segments, first-fill needs only %d", trial, len(segs), ff)
		}
	}
}

// bruteMinGroups finds the minimal number of contiguous groups with sum
// <= cap by DP over weights only.
func bruteMinGroups(reqs []float64, cap float64) int {
	n := len(reqs)
	const inf = 1 << 30
	dp := make([]int, n+1)
	for i := 1; i <= n; i++ {
		dp[i] = inf
		sum := 0.0
		for j := i - 1; j >= 0; j-- {
			sum += reqs[j]
			if sum > cap+1e-9 {
				break
			}
			if dp[j]+1 < dp[i] {
				dp[i] = dp[j] + 1
			}
		}
	}
	return dp[n]
}

// TestExactMatchesGreedyOrBetterRandomized: on feasible random
// instances the proven-exact solver never reports a worse A_max.
func TestExactMatchesGreedyOrBetterRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng, 3+rng.Intn(4))
		tp := randomTopo(rng, 2+rng.Intn(2))
		gp, gerr := (Greedy{ImproveBudget: 50 * time.Millisecond}).Solve(g, tp, Options{})
		ep, eerr := (Exact{MaxNodes: 200000}).Solve(g, tp, Options{})
		if gerr != nil || eerr != nil {
			continue
		}
		if ep.Proven && ep.AMax() > gp.AMax() {
			t.Fatalf("trial %d: proven exact A_max %d worse than greedy %d", trial, ep.AMax(), gp.AMax())
		}
	}
}
