package placement

import (
	"math/rand"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// fixedMAT builds a MAT with a fixed normalized requirement.
func fixedMAT(name string, req float64) *program.MAT {
	return &program.MAT{
		Name:             name,
		Capacity:         16,
		FixedRequirement: req,
		Actions: []program.Action{{
			Name: "a",
			Ops:  []program.Op{program.SetOp(fields.Metadata("meta."+name, 8), 1)},
		}},
	}
}

// chainTDG builds a linear TDG n0 -> n1 -> ... with the given per-edge
// metadata bytes and per-node requirement.
func chainTDG(t *testing.T, names []string, bytes []int, req float64) *tdg.Graph {
	t.Helper()
	g := tdg.New()
	for _, n := range names {
		if err := g.AddNode(fixedMAT(n, req)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < len(names); i++ {
		if err := g.AddEdge(names[i], names[i+1], tdg.DepMatch, bytes[i]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// twoMATSwitchTopo builds a linear topology of n programmable switches
// where each switch tolerates exactly two MATs of requirement 0.5
// (2 stages × 0.5 capacity), reproducing the paper's running example.
func twoMATSwitchTopo(t *testing.T, n int) *network.Topology {
	t.Helper()
	tp := network.NewTopology("example")
	for i := 0; i < n; i++ {
		tp.AddSwitch(network.Switch{
			Programmable:   true,
			Stages:         2,
			StageCapacity:  0.5,
			TransitLatency: time.Microsecond,
		})
	}
	for i := 0; i+1 < n; i++ {
		if err := tp.AddLink(network.SwitchID(i), network.SwitchID(i+1), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return tp
}

// figure1 reproduces the paper's Figure 1: MATs a -> b -> c where a
// delivers 1 byte to b and b delivers 4 bytes to c; each switch
// tolerates two MATs.
func figure1(t *testing.T) (*tdg.Graph, *network.Topology) {
	t.Helper()
	g := chainTDG(t, []string{"a", "b", "c"}, []int{1, 4}, 0.5)
	return g, twoMATSwitchTopo(t, 3)
}

func TestPackStagesChain(t *testing.T) {
	g := chainTDG(t, []string{"a", "b", "c"}, []int{1, 1}, 0.3)
	sw := &network.Switch{ID: 0, Name: "s", Programmable: true, Stages: 12, StageCapacity: 1}
	placed, err := PackStages(g, g.NodeNames(), sw, program.DefaultResourceModel)
	if err != nil {
		t.Fatal(err)
	}
	// Dependencies force strictly increasing stages (Eq. 8).
	if !(placed["a"].End < placed["b"].Start && placed["b"].End < placed["c"].Start) {
		t.Errorf("stage order violated: a=%+v b=%+v c=%+v", placed["a"], placed["b"], placed["c"])
	}
	for n, sp := range placed {
		if got := sp.Total(); got != 0.3 {
			t.Errorf("%s total = %g, want 0.3", n, got)
		}
	}
}

func TestPackStagesSpreadsBigMAT(t *testing.T) {
	g := tdg.New()
	if err := g.AddNode(fixedMAT("big", 2.5)); err != nil {
		t.Fatal(err)
	}
	sw := &network.Switch{ID: 0, Programmable: true, Stages: 4, StageCapacity: 1}
	placed, err := PackStages(g, []string{"big"}, sw, program.DefaultResourceModel)
	if err != nil {
		t.Fatal(err)
	}
	sp := placed["big"]
	if sp.Start != 0 || sp.End != 2 {
		t.Errorf("big spans [%d,%d], want [0,2]", sp.Start, sp.End)
	}
	if sp.Total() != 2.5 {
		t.Errorf("total = %g, want 2.5", sp.Total())
	}
}

func TestPackStagesDependencyDepthExceedsStages(t *testing.T) {
	g := chainTDG(t, []string{"a", "b", "c"}, []int{1, 1}, 0.1)
	sw := &network.Switch{ID: 0, Programmable: true, Stages: 2, StageCapacity: 1}
	if _, err := PackStages(g, g.NodeNames(), sw, program.DefaultResourceModel); err == nil {
		t.Error("3-deep chain packed into 2 stages")
	}
}

func TestPackStagesCapacityExceeded(t *testing.T) {
	g := tdg.New()
	if err := g.AddNode(fixedMAT("m", 3)); err != nil {
		t.Fatal(err)
	}
	sw := &network.Switch{ID: 0, Programmable: true, Stages: 2, StageCapacity: 1}
	if _, err := PackStages(g, []string{"m"}, sw, program.DefaultResourceModel); err == nil {
		t.Error("3.0 requirement packed into 2.0 capacity")
	}
}

func TestPackStagesSkipsFullStages(t *testing.T) {
	// Two independent MATs: first fills stage 0 entirely, second must
	// land in stage 1.
	g := tdg.New()
	if err := g.AddNode(fixedMAT("fat", 1.0)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(fixedMAT("thin", 0.5)); err != nil {
		t.Fatal(err)
	}
	sw := &network.Switch{ID: 0, Programmable: true, Stages: 2, StageCapacity: 1}
	placed, err := PackStages(g, []string{"fat", "thin"}, sw, program.DefaultResourceModel)
	if err != nil {
		t.Fatal(err)
	}
	if placed["thin"].Start != 1 {
		t.Errorf("thin at stage %d, want 1", placed["thin"].Start)
	}
}

func TestPackStagesRejectsNonProgrammable(t *testing.T) {
	g := chainTDG(t, []string{"a"}, nil, 0.1)
	sw := &network.Switch{ID: 0, Programmable: false}
	if _, err := PackStages(g, []string{"a"}, sw, program.DefaultResourceModel); err == nil {
		t.Error("packed onto non-programmable switch")
	}
	if _, err := PackStages(g, []string{"a"}, nil, program.DefaultResourceModel); err == nil {
		t.Error("packed onto nil switch")
	}
}

func TestSplitTDGFigure1(t *testing.T) {
	g, tp := figure1(t)
	sw, _ := tp.Switch(0)
	segs, err := SplitTDG(g, sw, program.DefaultResourceModel)
	if err != nil {
		t.Fatal(err)
	}
	// The min cut is after a (1 byte) — splitting b from c would cost 4.
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	if segs[0].NumNodes() != 1 || !contains(segs[0].NodeNames(), "a") {
		t.Errorf("first segment = %v, want {a}", segs[0].NodeNames())
	}
	if segs[1].NumNodes() != 2 {
		t.Errorf("second segment = %v, want {b,c}", segs[1].NodeNames())
	}
}

func TestSplitTDGAlreadyFits(t *testing.T) {
	g := chainTDG(t, []string{"a", "b"}, []int{4}, 0.3)
	sw := &network.Switch{ID: 0, Programmable: true, Stages: 12, StageCapacity: 1}
	segs, err := SplitTDG(g, sw, program.DefaultResourceModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("got %d segments, want 1", len(segs))
	}
}

func TestSplitTDGOversizedMAT(t *testing.T) {
	g := chainTDG(t, []string{"huge"}, nil, 99)
	sw := &network.Switch{ID: 0, Programmable: true, Stages: 2, StageCapacity: 1}
	if _, err := SplitTDG(g, sw, program.DefaultResourceModel); err == nil {
		t.Error("oversized single MAT split succeeded")
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func TestGreedyFigure1(t *testing.T) {
	g, tp := figure1(t)
	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Figure 1(b): deploying b and c together drops the overhead from 4
	// to 1 byte.
	if got := plan.AMax(); got != 1 {
		t.Errorf("AMax = %d, want 1 (paper Fig. 1b)", got)
	}
	if got := plan.QOcc(); got != 2 {
		t.Errorf("QOcc = %d, want 2", got)
	}
	// b and c co-located.
	ub, _ := plan.SwitchOf("b")
	uc, _ := plan.SwitchOf("c")
	if ub != uc {
		t.Errorf("b on %d, c on %d; want co-located", ub, uc)
	}
}

func TestGreedySingleSwitchNoOverhead(t *testing.T) {
	g := chainTDG(t, []string{"a", "b", "c"}, []int{9, 9}, 0.2)
	tp := twoMATSwitchTopo(t, 3)
	// Grow the switches so everything fits on one.
	for _, s := range tp.Switches() {
		s.Stages = 12
		s.StageCapacity = 1
	}
	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.AMax() != 0 {
		t.Errorf("AMax = %d, want 0 on a single switch", plan.AMax())
	}
	if plan.QOcc() != 1 {
		t.Errorf("QOcc = %d, want 1", plan.QOcc())
	}
	if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyRespectsEpsilon2(t *testing.T) {
	// 4 MATs of 0.5 onto 2-MAT switches needs 2 switches; ε2 = 1 must
	// fail.
	g := chainTDG(t, []string{"a", "b", "c", "d"}, []int{1, 1, 1}, 0.5)
	tp := twoMATSwitchTopo(t, 4)
	if _, err := (Greedy{}).Solve(g, tp, Options{Epsilon2: 1}); err == nil {
		t.Error("ε2=1 deployment of multi-switch workload succeeded")
	}
	// Two 2-MAT switches suffice; the DP capacity split finds that even
	// when the byte-driven bisection wants three segments.
	plan, err := (Greedy{}).Solve(g, tp, Options{Epsilon2: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(program.DefaultResourceModel, 0, 2); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyErrors(t *testing.T) {
	tp := twoMATSwitchTopo(t, 2)
	if _, err := (Greedy{}).Solve(tdg.New(), tp, Options{}); err == nil {
		t.Error("empty TDG accepted")
	}
	// Topology with no programmable switches.
	tp2 := network.NewTopology("plain")
	tp2.AddSwitch(network.Switch{})
	g := chainTDG(t, []string{"a"}, nil, 0.1)
	if _, err := (Greedy{}).Solve(g, tp2, Options{}); err == nil {
		t.Error("no-programmable-switch topology accepted")
	}
}

func TestGreedyRefinesWhenPackingFails(t *testing.T) {
	// Three dependent MATs of 0.2 fit one switch by capacity
	// (0.6 <= 2*0.5) but the chain depth 3 exceeds 2 stages, forcing
	// refinement into more segments.
	g := chainTDG(t, []string{"a", "b", "c"}, []int{2, 3}, 0.2)
	tp := twoMATSwitchTopo(t, 3)
	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatal(err)
	}
	if plan.QOcc() < 2 {
		t.Errorf("QOcc = %d, want >= 2 after refinement", plan.QOcc())
	}
}

func TestExactFigure1(t *testing.T) {
	g, tp := figure1(t)
	plan, err := (Exact{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Proven {
		t.Error("small instance not proven optimal")
	}
	if got := plan.AMax(); got != 1 {
		t.Errorf("exact AMax = %d, want 1", got)
	}
	if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestExactNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(3) // 3..5 MATs
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		g := tdg.New()
		for _, nm := range names {
			if err := g.AddNode(fixedMAT(nm, 0.3+0.2*rng.Float64())); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					if err := g.AddEdge(names[i], names[j], tdg.DepMatch, rng.Intn(10)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		tp := twoMATSwitchTopo(t, 3)
		for _, s := range tp.Switches() {
			s.Stages = 4
			s.StageCapacity = 0.6
		}
		gp, gerr := (Greedy{}).Solve(g, tp, Options{})
		ep, eerr := (Exact{}).Solve(g, tp, Options{})
		if eerr != nil {
			if gerr == nil {
				t.Fatalf("trial %d: greedy solved but exact failed: %v", trial, eerr)
			}
			continue
		}
		if err := ep.Validate(program.DefaultResourceModel, 0, 0); err != nil {
			t.Fatalf("trial %d: exact plan invalid: %v", trial, err)
		}
		if gerr == nil && ep.AMax() > gp.AMax() {
			t.Errorf("trial %d: exact AMax %d worse than greedy %d", trial, ep.AMax(), gp.AMax())
		}
	}
}

func TestILPFigure1(t *testing.T) {
	g, tp := figure1(t)
	plan, err := (ILP{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.AMax(); got != 1 {
		t.Errorf("ILP AMax = %d, want 1", got)
	}
	if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestILPMatchesExactOnTinyInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(2)
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		g := tdg.New()
		for _, nm := range names {
			if err := g.AddNode(fixedMAT(nm, 0.4)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i+1 < n; i++ {
			if err := g.AddEdge(names[i], names[i+1], tdg.DepMatch, 1+rng.Intn(8)); err != nil {
				t.Fatal(err)
			}
		}
		tp := twoMATSwitchTopo(t, 2)
		for _, s := range tp.Switches() {
			s.Stages = 3
			s.StageCapacity = 0.5
		}
		ep, eerr := (Exact{}).Solve(g, tp, Options{})
		ip, ierr := (ILP{}).Solve(g, tp, Options{})
		if (eerr == nil) != (ierr == nil) {
			t.Fatalf("trial %d: exact err=%v ilp err=%v", trial, eerr, ierr)
		}
		if eerr != nil {
			continue
		}
		if ep.AMax() != ip.AMax() {
			t.Errorf("trial %d: exact AMax %d != ILP AMax %d", trial, ep.AMax(), ip.AMax())
		}
	}
}

func TestPlanValidateCatchesTampering(t *testing.T) {
	g, tp := figure1(t)
	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rm := program.DefaultResourceModel

	t.Run("missing MAT", func(t *testing.T) {
		bad := *plan
		bad.Assignments = map[string]StagePlacement{}
		for k, v := range plan.Assignments {
			bad.Assignments[k] = v
		}
		delete(bad.Assignments, "a")
		if err := bad.Validate(rm, 0, 0); err == nil {
			t.Error("missing assignment accepted")
		}
	})
	t.Run("missing route", func(t *testing.T) {
		bad := *plan
		bad.Routes = map[RouteKey]network.Path{}
		if err := bad.Validate(rm, 0, 0); err == nil {
			t.Error("missing routes accepted")
		}
	})
	t.Run("stage order violated", func(t *testing.T) {
		bad := *plan
		bad.Assignments = map[string]StagePlacement{}
		for k, v := range plan.Assignments {
			bad.Assignments[k] = v
		}
		// Put b and c both at stage 0 on the same switch: breaks Eq. 8
		// (and possibly Eq. 9).
		sb := bad.Assignments["b"]
		sc := bad.Assignments["c"]
		sc.Start, sc.End = sb.Start, sb.End
		sc.PerStage = append([]float64(nil), sb.PerStage...)
		bad.Assignments["c"] = sc
		if err := bad.Validate(rm, 0, 0); err == nil {
			t.Error("stage order violation accepted")
		}
	})
	t.Run("epsilon violated", func(t *testing.T) {
		if err := plan.Validate(rm, time.Nanosecond, 0); err == nil {
			t.Error("ε1=1ns accepted despite ms links")
		}
		if err := plan.Validate(rm, 0, 1); err == nil {
			t.Error("ε2=1 accepted for 2-switch plan")
		}
	})
}

func TestPlanMetrics(t *testing.T) {
	g, tp := figure1(t)
	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalCrossBytes() != 1 {
		t.Errorf("TotalCrossBytes = %d, want 1", plan.TotalCrossBytes())
	}
	if plan.TE2E() <= 0 {
		t.Error("TE2E should be positive for a cross-switch plan")
	}
	if plan.MaxWireBytes() != 1 {
		t.Errorf("MaxWireBytes = %d, want 1", plan.MaxWireBytes())
	}
	order, err := plan.SwitchOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Errorf("SwitchOrder = %v, want 2 switches", order)
	}
	if plan.Summary() == "" {
		t.Error("empty Summary")
	}
}

func TestGreedyDeterministic(t *testing.T) {
	g, tp := figure1(t)
	p1, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, sp1 := range p1.Assignments {
		sp2 := p2.Assignments[name]
		if sp1.Switch != sp2.Switch || sp1.Start != sp2.Start || sp1.End != sp2.End {
			t.Errorf("non-deterministic placement for %s: %+v vs %+v", name, sp1, sp2)
		}
	}
}

func TestExactDeadlineReturnsIncumbent(t *testing.T) {
	// A moderately large instance with an immediate deadline: the warm
	// start incumbent must come back, unproven.
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	bytes := []int{3, 1, 4, 1, 5, 9, 2}
	g := chainTDG(t, names, bytes, 0.5)
	tp := twoMATSwitchTopo(t, 8)
	plan, err := (Exact{}).Solve(g, tp, Options{Deadline: time.Now().Add(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestILPObjectiveVariants(t *testing.T) {
	g, tp := figure1(t)
	for _, obj := range []ILPObjective{ObjLatency, ObjSwitches, ObjBalance} {
		obj := obj
		t.Run(obj.String(), func(t *testing.T) {
			plan, err := (ILP{Objective: obj}).Solve(g, tp, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
				t.Fatal(err)
			}
			if obj == ObjSwitches && plan.QOcc() != 2 {
				t.Errorf("switch-minimizing ILP used %d switches, want 2", plan.QOcc())
			}
		})
	}
	if (ILP{Objective: ObjLatency}).Name() != "ILP-latency" {
		t.Error("objective naming wrong")
	}
	if (ILP{DisplayName: "MS-ILP"}).Name() != "MS-ILP" {
		t.Error("display name override broken")
	}
}

func TestEstimateVars(t *testing.T) {
	g, tp := figure1(t)
	est := EstimateVars(g, tp)
	// 3 MATs * 3 switches + 2 edges * 3 * 2 + 2*3 + 2 = 9+12+8 = 29.
	if est != 29 {
		t.Errorf("EstimateVars = %d, want 29", est)
	}
}
