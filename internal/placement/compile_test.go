package placement

import (
	"math/rand"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
)

// randomFullAssign places every MAT on a random switch.
func randomFullAssign(rng *rand.Rand, ci *CompiledInstance) map[string]network.SwitchID {
	out := make(map[string]network.SwitchID, len(ci.Names))
	for _, name := range ci.Names {
		out[name] = network.SwitchID(rng.Intn(int(ci.S)))
	}
	return out
}

// checkKernelsAgainstRefs asserts every compiled kernel against its
// map-based reference twin on one assignment.
func checkKernelsAgainstRefs(t *testing.T, rng *rand.Rand, ci *CompiledInstance, assign map[string]network.SwitchID, eps1 bool) {
	t.Helper()
	g := ci.Graph
	dense := ci.DenseAssign(assign)
	pt := ci.NewPairTable()
	ms := ci.NewMoveScratch()
	cyc := ci.NewCycleScratch()

	// Pair table and totals.
	refPair, refTotal := PairBytesRef(g, assign)
	total := ci.FillPairTable(dense, pt)
	if total != refTotal {
		t.Fatalf("total cross bytes: compiled %d, ref %d", total, refTotal)
	}
	seen := 0
	for _, cell := range pt.Keys() {
		key := RouteKey{From: network.SwitchID(cell / pt.S), To: network.SwitchID(cell % pt.S)}
		if got, want := int(pt.Cells[cell]), refPair[key]; got != want {
			t.Fatalf("pair %v: compiled %d, ref %d", key, got, want)
		}
		if pt.Cells[cell] != 0 {
			seen++
		}
	}
	nonzero := 0
	for _, b := range refPair {
		if b != 0 {
			nonzero++
		}
	}
	if seen != nonzero {
		t.Fatalf("compiled table has %d nonzero cells, ref map %d", seen, nonzero)
	}

	// A_max.
	if got, want := ci.AssignmentAMax(dense, pt), AssignmentAMaxRef(g, assign); got != want {
		t.Fatalf("A_max: compiled %d, ref %d", got, want)
	}

	// Acyclicity.
	if got, want := ci.AssignmentAcyclic(dense, cyc), assignmentAcyclic(g, assign); got != want {
		t.Fatalf("acyclicity: compiled %v, ref %v", got, want)
	}

	// ε1 latency sum.
	if eps1 {
		lat, ok := ci.AssignmentLatency(dense, ms)
		refLat, refErr := assignmentLatency(g, ci.Topo, assign)
		if ok != (refErr == nil) {
			t.Fatalf("latency feasibility: compiled %v, ref err %v", ok, refErr)
		}
		if ok && lat != refLat {
			t.Fatalf("latency: compiled %v, ref %v", lat, refLat)
		}
	}

	// Move scores for a handful of random (MAT, candidate) pairs.
	ci.FillPairTable(dense, pt)
	delta := map[RouteKey]int{}
	for k := 0; k < 6; k++ {
		x := rng.Intn(len(ci.Names))
		c := network.SwitchID(rng.Intn(int(ci.S)))
		a, cross := ci.MoveScore(dense, pt, ms, int32(x), int32(c), total)
		refA, refCross := MoveScoreRef(g, assign, refPair, delta, refTotal, ci.Names[x], c)
		if a != refA || cross != refCross {
			t.Fatalf("move %s→%d: compiled (%d,%d), ref (%d,%d)", ci.Names[x], c, a, cross, refA, refCross)
		}
	}

	// Place scores over a partial assignment: unassign a random subset
	// and score each unassigned MAT on every switch.
	partial := make(map[string]network.SwitchID, len(assign))
	for name, u := range assign {
		if rng.Float64() < 0.7 {
			partial[name] = u
		}
	}
	pdense := ci.DenseAssign(partial)
	ppair, _ := PairBytesRef(g, partial)
	ci.FillPairTable(pdense, pt)
	for _, name := range ci.Names {
		if _, ok := partial[name]; ok {
			continue
		}
		x := ci.Index[name]
		for u := int32(0); u < ci.S; u++ {
			got := ci.PlaceScore(pdense, pt, ms, x, u)
			want := PlaceScoreRef(g, partial, ppair, delta, name, network.SwitchID(u))
			if got != want {
				t.Fatalf("place %s→%d: compiled %d, ref %d", name, u, got, want)
			}
		}
	}
}

// TestCompiledKernelsMatchMapReferences is the tentpole's differential
// oracle: on randomized instances and assignments, every compiled
// scoring kernel agrees with the retained map-based implementation
// bit-for-bit.
func TestCompiledKernelsMatchMapReferences(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 80; trial++ {
		g := randomDAG(rng, 3+rng.Intn(9))
		tp := randomTopo(rng, 2+rng.Intn(5))
		ci := Compile(g, tp, Options{}.resourceModel())
		assign := randomFullAssign(rng, ci)
		checkKernelsAgainstRefs(t, rng, ci, assign, true)
	}
}

// TestCompiledKernelsOnSolvedPlans runs the same differential oracle
// on real solver output (the plans the property tests generate), plus
// the Plan-level pair cache against its uncached reference.
func TestCompiledKernelsOnSolvedPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	solved := 0
	for trial := 0; trial < 40 && solved < 20; trial++ {
		g := randomDAG(rng, 3+rng.Intn(8))
		tp := randomTopo(rng, 2+rng.Intn(4))
		plan, err := (Greedy{ImproveBudget: 50 * time.Millisecond}).Solve(g, tp, Options{})
		if err != nil {
			continue
		}
		solved++
		ci := Compile(g, tp, Options{}.resourceModel())
		checkKernelsAgainstRefs(t, rng, ci, assignmentOf(plan), true)

		cached := plan.PairBytes()
		uncached := plan.PairBytesUncached()
		if len(cached) != len(uncached) {
			t.Fatalf("cached pair map has %d keys, uncached %d", len(cached), len(uncached))
		}
		for k, v := range uncached {
			if cached[k] != v {
				t.Fatalf("pair %v: cached %d, uncached %d", k, cached[k], v)
			}
		}
	}
	if solved == 0 {
		t.Fatal("no instance solved")
	}
}

// TestCompiledKernelsAfterRandomizedDrain drives the PR 3 randomized
// drain path and checks the kernels on the repaired plans — the
// repair's compiled scoring must leave plans whose pair structure the
// references reproduce exactly.
func TestCompiledKernelsAfterRandomizedDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	repaired := 0
	for trial := 0; trial < 40 && repaired < 12; trial++ {
		g := randomDAG(rng, 4+rng.Intn(7))
		tp := randomTopo(rng, 3+rng.Intn(3))
		plan, err := (Greedy{ImproveBudget: 50 * time.Millisecond}).Solve(g, tp, Options{})
		if err != nil {
			continue
		}
		used := plan.UsedSwitches()
		drain := used[rng.Intn(len(used))]
		next, _, err := ReplanWithOptions(plan, Greedy{}, ReplanOptions{}, drain)
		if err != nil {
			continue // drain may make the instance infeasible
		}
		repaired++
		ci := Compile(next.Graph, next.Topo, Options{}.resourceModel())
		checkKernelsAgainstRefs(t, rng, ci, assignmentOf(next), true)
		if got, want := next.AMax(), AssignmentAMaxRef(next.Graph, assignmentOf(next)); got != want {
			t.Fatalf("repaired plan A_max %d != ref %d", got, want)
		}
	}
	if repaired == 0 {
		t.Fatal("no drain repaired")
	}
}

// TestPackScratchMatchesFitsSwitch: the dense contiguous-range fit
// kernel used by the capacity-split DP must agree with the name-keyed
// FitsSwitch on every range of the topological order.
func TestPackScratchMatchesFitsSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rm := Options{}.resourceModel()
	for trial := 0; trial < 60; trial++ {
		g := randomDAG(rng, 3+rng.Intn(9))
		tp := randomTopo(rng, 2+rng.Intn(4))
		order, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		sw, err := tp.Switch(network.SwitchID(rng.Intn(tp.NumSwitches())))
		if err != nil {
			t.Fatal(err)
		}
		ps := newPackScratch(g, order, sw, rm)
		n := len(order)
		for i := 1; i <= n; i++ {
			for j := 0; j < i; j++ {
				got := ps.fits(j, i)
				want := FitsSwitch(g, order[j:i], sw, rm)
				if got != want {
					t.Fatalf("trial %d: range [%d:%d) on switch %d: dense %v, FitsSwitch %v",
						trial, j, i, sw.ID, got, want)
				}
			}
		}
	}
}

// TestPairBytesCacheInvalidation: the memoized pair map must never
// survive a mutation that Validate or InvalidateCache sees.
func TestPairBytesCacheInvalidation(t *testing.T) {
	g := chainTDG(t, []string{"a", "b", "c"}, []int{8, 8}, 0.4)
	tp, err := network.Linear(3, network.SwitchSpec{
		Stages: 4, StageCapacity: 1.0, ProgrammableFraction: 1.0,
		LinkLatencyMin: time.Millisecond, LinkLatencyMax: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := plan.PairBytes()
	if again := plan.PairBytes(); &again == &first {
		_ = again // maps compare by header; the point is the cache path ran
	}
	before := plan.AMax()

	// Tamper in place, as the lint mutation tests do.
	var victim string
	for name := range plan.Assignments {
		victim = name
		break
	}
	sp := plan.Assignments[victim]
	sp.Switch = (sp.Switch + 1) % network.SwitchID(tp.NumSwitches())
	plan.Assignments[victim] = sp

	plan.InvalidateCache()
	after := plan.AMax()
	want := AssignmentAMaxRef(g, assignmentOf(plan))
	if after != want {
		t.Fatalf("post-mutation AMax %d, want %d (stale cache?)", after, want)
	}
	_ = before
}

// TestCompileMemoRevalidates: the memoized instance must be reused
// verbatim while the topology is untouched, and dropped when switch
// traits mutate in place (the replan drain path).
func TestCompileMemoRevalidates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomDAG(rng, 6)
	tp := randomTopo(rng, 4)
	rm := Options{}.resourceModel()
	a := Compile(g, tp, rm)
	if b := Compile(g, tp, rm); a != b {
		t.Fatal("unchanged instance was recompiled")
	}
	sw, err := tp.Switch(0)
	if err != nil {
		t.Fatal(err)
	}
	sw.Programmable = false
	sw.Stages = 0
	sw.StageCapacity = 0
	c := Compile(g, tp, rm)
	if c == a {
		t.Fatal("drained switch did not invalidate the compiled instance")
	}
	if c.Programmable[0] {
		t.Fatal("recompiled instance still sees switch 0 as programmable")
	}
	other := program.ResourceModel{SRAMBytesPerStage: 1, TCAMFactor: 1, ALUWeight: 1, MinCost: 0.5}
	if d := Compile(g, tp, other); d == c {
		t.Fatal("resource-model change did not invalidate the compiled instance")
	}
}
