package placement

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// Plan persistence: a plan is computed offline (possibly with a long
// solver budget) and applied later; the JSON form stores the decision
// variables — assignments and routes — plus provenance, and is
// rehydrated against the same TDG and topology.

// planJSON is the serialized form.
type planJSON struct {
	Version     int                       `json:"version"`
	SolverName  string                    `json:"solver"`
	SolveTimeNS int64                     `json:"solve_time_ns"`
	Proven      bool                      `json:"proven"`
	Assignments map[string]stagePlaceJSON `json:"assignments"`
	Routes      []routeJSON               `json:"routes"`
}

type stagePlaceJSON struct {
	Switch   int       `json:"switch"`
	Start    int       `json:"start"`
	End      int       `json:"end"`
	PerStage []float64 `json:"per_stage"`
}

type routeJSON struct {
	From     int   `json:"from"`
	To       int   `json:"to"`
	Switches []int `json:"switches"`
}

// planCodecVersion guards format evolution.
const planCodecVersion = 1

// EncodeJSON serializes the plan's decision variables.
func (p *Plan) EncodeJSON() ([]byte, error) {
	if p.Graph == nil || p.Topo == nil {
		return nil, fmt.Errorf("placement: encoding incomplete plan")
	}
	out := planJSON{
		Version:     planCodecVersion,
		SolverName:  p.SolverName,
		SolveTimeNS: int64(p.SolveTime),
		Proven:      p.Proven,
		Assignments: map[string]stagePlaceJSON{},
	}
	for name, sp := range p.Assignments {
		out.Assignments[name] = stagePlaceJSON{
			Switch:   int(sp.Switch),
			Start:    sp.Start,
			End:      sp.End,
			PerStage: sp.PerStage,
		}
	}
	for key, path := range p.Routes {
		r := routeJSON{From: int(key.From), To: int(key.To)}
		for _, s := range path.Switches {
			r.Switches = append(r.Switches, int(s))
		}
		out.Routes = append(out.Routes, r)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("placement: encoding plan: %w", err)
	}
	return data, nil
}

// DecodePlan rehydrates a serialized plan against the TDG and topology
// it was computed for, recomputing route latencies and validating the
// result under the given resource model.
func DecodePlan(data []byte, g *tdg.Graph, topo *network.Topology, rm program.ResourceModel) (*Plan, error) {
	var in planJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("placement: decoding plan: %w", err)
	}
	if in.Version != planCodecVersion {
		return nil, fmt.Errorf("placement: unsupported plan version %d (want %d)", in.Version, planCodecVersion)
	}
	p := &Plan{
		Graph:       g,
		Topo:        topo,
		SolverName:  in.SolverName,
		SolveTime:   time.Duration(in.SolveTimeNS),
		Proven:      in.Proven,
		Assignments: map[string]StagePlacement{},
		Routes:      map[RouteKey]network.Path{},
	}
	for name, sp := range in.Assignments {
		if _, ok := g.Node(name); !ok {
			return nil, fmt.Errorf("placement: plan assigns unknown MAT %q", name)
		}
		p.Assignments[name] = StagePlacement{
			Switch:   network.SwitchID(sp.Switch),
			Start:    sp.Start,
			End:      sp.End,
			PerStage: sp.PerStage,
		}
	}
	for _, r := range in.Routes {
		seq := make([]network.SwitchID, len(r.Switches))
		for i, s := range r.Switches {
			seq[i] = network.SwitchID(s)
		}
		path, err := rebuildPath(topo, seq)
		if err != nil {
			return nil, fmt.Errorf("placement: plan route %d->%d: %w", r.From, r.To, err)
		}
		p.Routes[RouteKey{From: network.SwitchID(r.From), To: network.SwitchID(r.To)}] = path
	}
	if err := p.Validate(rm, 0, 0); err != nil {
		return nil, fmt.Errorf("placement: decoded plan invalid: %w", err)
	}
	return p, nil
}

// rebuildPath reconstructs a network.Path (with latency) from a switch
// sequence, verifying every hop exists.
func rebuildPath(topo *network.Topology, seq []network.SwitchID) (network.Path, error) {
	if len(seq) == 0 {
		return network.Path{}, fmt.Errorf("empty path")
	}
	var total time.Duration
	for i, id := range seq {
		sw, err := topo.Switch(id)
		if err != nil {
			return network.Path{}, err
		}
		total += sw.TransitLatency
		if i == 0 {
			continue
		}
		l, ok := topo.LinkBetween(seq[i-1], id)
		if !ok {
			return network.Path{}, fmt.Errorf("no link %d-%d", seq[i-1], id)
		}
		total += l.Latency
	}
	return network.Path{Switches: seq, Latency: total}, nil
}
