package placement

import (
	"math/rand"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/network"
)

// randomTraffic draws one of the seeded traffic models for a topology.
func randomTraffic(t *testing.T, rng *rand.Rand, tp *network.Topology) *network.TrafficMatrix {
	t.Helper()
	models := network.TrafficModels()
	tm, err := network.GenerateTraffic(tp, models[rng.Intn(len(models))], rng.Int63())
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

// checkWeightedKernels asserts the compiled weighted kernels against
// their map twins on one full assignment, plus PlaceScoreWeighted on a
// random partial assignment.
func checkWeightedKernels(t *testing.T, rng *rand.Rand, ci *CompiledInstance, assign map[string]network.SwitchID, tm *network.TrafficMatrix) {
	t.Helper()
	g := ci.Graph
	wt, err := ci.CompileWeights(tm)
	if err != nil {
		t.Fatal(err)
	}
	weights := wt.WeightMap()
	dense := ci.DenseAssign(assign)
	pt := ci.NewPairTable()
	ms := ci.NewMoveScratch()
	ci.FillPairTable(dense, pt)

	// Full-assignment score.
	sum, max := wt.Score(pt)
	refSum, refMax := AssignmentWeightedRef(g, assign, weights)
	if sum != refSum || max != refMax {
		t.Fatalf("weighted score: compiled (%d,%d), ref (%d,%d)", sum, max, refSum, refMax)
	}
	if s2, m2 := ci.AssignmentWeighted(dense, pt, wt); s2 != refSum || m2 != refMax {
		t.Fatalf("AssignmentWeighted: compiled (%d,%d), ref (%d,%d)", s2, m2, refSum, refMax)
	}

	// Weighted move scores on random (MAT, candidate) pairs.
	refPair, _ := PairBytesRef(g, assign)
	delta := map[RouteKey]int{}
	for k := 0; k < 8; k++ {
		x := rng.Intn(len(ci.Names))
		c := network.SwitchID(rng.Intn(int(ci.S)))
		ws, wm := ci.MoveScoreWeighted(dense, pt, ms, wt, int32(x), int32(c), sum)
		rws, rwm := MoveScoreWeightedRef(g, assign, refPair, delta, weights, ci.Names[x], c)
		if ws != rws || wm != rwm {
			t.Fatalf("weighted move %s→%d: compiled (%d,%d), ref (%d,%d)",
				ci.Names[x], c, ws, wm, rws, rwm)
		}
	}

	// Weighted place scores over a partial assignment.
	partial := make(map[string]network.SwitchID, len(assign))
	for name, u := range assign {
		if rng.Float64() < 0.7 {
			partial[name] = u
		}
	}
	pdense := ci.DenseAssign(partial)
	ppair, _ := PairBytesRef(g, partial)
	ci.FillPairTable(pdense, pt)
	psum, _ := wt.Score(pt)
	for _, name := range ci.Names {
		if _, ok := partial[name]; ok {
			continue
		}
		x := ci.Index[name]
		for u := int32(0); u < ci.S; u++ {
			ws, wm := ci.PlaceScoreWeighted(pdense, pt, ms, wt, x, u, psum)
			rws, rwm := PlaceScoreWeightedRef(g, partial, ppair, delta, weights, name, network.SwitchID(u))
			if ws != rws || wm != rwm {
				t.Fatalf("weighted place %s→%d: compiled (%d,%d), ref (%d,%d)",
					name, u, ws, wm, rws, rwm)
			}
		}
	}
}

// TestWeightedKernelsMatchMapReferences is the weighted analog of
// TestCompiledKernelsMatchMapReferences: on randomized instances,
// assignments, and traffic models, every weighted compiled kernel
// agrees with its map twin bit-for-bit.
func TestWeightedKernelsMatchMapReferences(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 60; trial++ {
		g := randomDAG(rng, 3+rng.Intn(9))
		tp := randomTopo(rng, 2+rng.Intn(5))
		ci := Compile(g, tp, Options{}.resourceModel())
		tm := randomTraffic(t, rng, tp)
		assign := randomFullAssign(rng, ci)
		checkWeightedKernels(t, rng, ci, assign, tm)
	}
}

// TestWeightedKernelsOnSolvedPlans runs the weighted differential
// oracle on real weighted solver output, and on the plans left behind
// by randomized drains repaired under traffic.
func TestWeightedKernelsOnSolvedPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	solved, repaired := 0, 0
	for trial := 0; trial < 50 && (solved < 12 || repaired < 6); trial++ {
		g := randomDAG(rng, 3+rng.Intn(8))
		tp := randomTopo(rng, 2+rng.Intn(4))
		tm := randomTraffic(t, rng, tp)
		obj := TrafficObjective(rng.Intn(2))
		opts := Options{Traffic: tm, TrafficObjective: obj}
		plan, err := (Greedy{ImproveBudget: 50 * time.Millisecond}).Solve(g, tp, opts)
		if err != nil {
			continue
		}
		solved++
		ci := Compile(g, tp, Options{}.resourceModel())
		checkWeightedKernels(t, rng, ci, assignmentOf(plan), tm)

		used := plan.UsedSwitches()
		drain := used[rng.Intn(len(used))]
		next, _, err := ReplanWithOptions(plan, Greedy{}, ReplanOptions{Options: Options{Traffic: tm, TrafficObjective: obj}}, drain)
		if err != nil {
			continue
		}
		repaired++
		ci2 := Compile(next.Graph, next.Topo, Options{}.resourceModel())
		checkWeightedKernels(t, rng, ci2, assignmentOf(next), tm)
	}
	if solved == 0 {
		t.Fatal("no weighted instance solved")
	}
	if repaired == 0 {
		t.Fatal("no weighted drain repaired")
	}
}

// TestWeightedSolveRespectsAMaxSlack: a weighted Greedy solve must
// never inflate the structural A_max beyond AMaxSlack × the structural
// optimum the same solve reaches without traffic.
func TestWeightedSolveRespectsAMaxSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	checked := 0
	for trial := 0; trial < 40 && checked < 12; trial++ {
		g := randomDAG(rng, 4+rng.Intn(8))
		tp := randomTopo(rng, 2+rng.Intn(4))
		tm := randomTraffic(t, rng, tp)
		base, err := (Greedy{ImproveBudget: 50 * time.Millisecond}).Solve(g, tp, Options{})
		if err != nil {
			continue
		}
		weighted, err := (Greedy{ImproveBudget: 50 * time.Millisecond}).Solve(g, tp, Options{Traffic: tm})
		if err != nil {
			t.Fatalf("weighted solve failed where structural succeeded: %v", err)
		}
		checked++
		acap := Options{}.amaxCap(base.AMax())
		if weighted.AMax() > acap {
			t.Fatalf("weighted A_max %d exceeds %d (structural %d × slack 1.2)",
				weighted.AMax(), acap, base.AMax())
		}
		// The weighted plan must not be worse than the structural plan
		// under the weighted objective (both are feasible points).
		ci := Compile(g, tp, Options{}.resourceModel())
		wt, err := ci.CompileWeights(tm)
		if err != nil {
			t.Fatal(err)
		}
		pt := ci.NewPairTable()
		ws, _ := ci.AssignmentWeighted(ci.DenseAssign(assignmentOf(weighted)), pt, wt)
		bs, _ := ci.AssignmentWeighted(ci.DenseAssign(assignmentOf(base)), pt, wt)
		if ws > bs {
			t.Fatalf("weighted solve ended with W_sum %d > structural plan's %d", ws, bs)
		}
	}
	if checked == 0 {
		t.Fatal("no instance checked")
	}
}

// TestWeightedSolverDeterministicAcrossWorkers: weighted solves must
// produce byte-identical plans for every worker count, like the
// structural path.
func TestWeightedSolverDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(174))
	checked := 0
	for trial := 0; trial < 30 && checked < 8; trial++ {
		g := randomDAG(rng, 4+rng.Intn(8))
		tp := randomTopo(rng, 2+rng.Intn(4))
		tm := randomTraffic(t, rng, tp)
		obj := TrafficObjective(rng.Intn(2))
		var plans []*Plan
		failed := false
		for _, w := range []int{1, 2, 7} {
			p, err := (Greedy{ImproveBudget: 100 * time.Millisecond}).Solve(g, tp, Options{
				Traffic: tm, TrafficObjective: obj, Workers: w,
			})
			if err != nil {
				failed = true
				break
			}
			plans = append(plans, p)
		}
		if failed {
			continue
		}
		checked++
		for i := 1; i < len(plans); i++ {
			for name, sp := range plans[0].Assignments {
				if plans[i].Assignments[name].Switch != sp.Switch {
					t.Fatalf("worker count changed weighted plan: MAT %q on %d vs %d",
						name, sp.Switch, plans[i].Assignments[name].Switch)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no instance checked")
	}
}

// TestExactWeightedNotWorseThanGreedy: on small instances the weighted
// branch-and-bound must end at a weighted objective no worse than the
// weighted Greedy's, while honoring the same structural cap.
func TestExactWeightedNotWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(175))
	checked := 0
	for trial := 0; trial < 30 && checked < 6; trial++ {
		g := randomDAG(rng, 3+rng.Intn(4))
		tp := randomTopo(rng, 2)
		tm := randomTraffic(t, rng, tp)
		opts := Options{Traffic: tm, Deadline: time.Now().Add(2 * time.Second)}
		gp, err := (Greedy{ImproveBudget: 50 * time.Millisecond}).Solve(g, tp, opts)
		if err != nil {
			continue
		}
		ep, err := (Exact{}).Solve(g, tp, opts)
		if err != nil {
			t.Fatalf("weighted exact failed where greedy succeeded: %v", err)
		}
		checked++
		ci := Compile(g, tp, Options{}.resourceModel())
		wt, err := ci.CompileWeights(tm)
		if err != nil {
			t.Fatal(err)
		}
		pt := ci.NewPairTable()
		es, _ := ci.AssignmentWeighted(ci.DenseAssign(assignmentOf(ep)), pt, wt)
		gs, _ := ci.AssignmentWeighted(ci.DenseAssign(assignmentOf(gp)), pt, wt)
		if es > gs {
			t.Fatalf("exact weighted W_sum %d worse than greedy %d", es, gs)
		}
	}
	if checked == 0 {
		t.Fatal("no instance checked")
	}
}

// TestTrafficObjectiveParse round-trips the CLI spellings.
func TestTrafficObjectiveParse(t *testing.T) {
	for _, o := range []TrafficObjective{TrafficWeightedSum, TrafficWeightedMax} {
		got, err := ParseTrafficObjective(o.String())
		if err != nil || got != o {
			t.Fatalf("round-trip %v: got %v, err %v", o, got, err)
		}
	}
	if _, err := ParseTrafficObjective("bogus"); err == nil {
		t.Fatal("bogus objective accepted")
	}
	if o, err := ParseTrafficObjective(""); err != nil || o != TrafficWeightedSum {
		t.Fatal("empty objective should default to sum")
	}
}
