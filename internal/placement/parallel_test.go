package placement

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/workload"
)

func TestParallelFor(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		var hits [37]atomic.Int32
		parallelFor(len(hits), workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
	parallelFor(0, 4, func(int) { t.Fatal("fn called for n=0") })
}

// samePlan fails the test unless the two plans agree on every
// assignment, every route, and the headline objective.
func samePlan(t *testing.T, label string, a, b *Plan) {
	t.Helper()
	if a.AMax() != b.AMax() {
		t.Errorf("%s: A_max %d vs %d", label, a.AMax(), b.AMax())
	}
	if len(a.Assignments) != len(b.Assignments) {
		t.Fatalf("%s: %d vs %d assignments", label, len(a.Assignments), len(b.Assignments))
	}
	for name, sa := range a.Assignments {
		sb, ok := b.Assignments[name]
		if !ok || sa.Switch != sb.Switch || sa.Start != sb.Start || sa.End != sb.End {
			t.Errorf("%s: assignment %s differs: %+v vs %+v", label, name, sa, sb)
		}
	}
	if len(a.Routes) != len(b.Routes) {
		t.Fatalf("%s: %d vs %d routes", label, len(a.Routes), len(b.Routes))
	}
	for key, ra := range a.Routes {
		rb, ok := b.Routes[key]
		if !ok || len(ra.Switches) != len(rb.Switches) {
			t.Errorf("%s: route %v differs: %v vs %v", label, key, ra.Switches, rb.Switches)
			continue
		}
		for i := range ra.Switches {
			if ra.Switches[i] != rb.Switches[i] {
				t.Errorf("%s: route %v hop %d: %d vs %d", label, key, i, ra.Switches[i], rb.Switches[i])
			}
		}
	}
}

// TestGreedyParallelMatchesSerial checks the headline determinism
// guarantee: the same bundle solved with Workers=1 and Workers=8 on
// three Table III WANs yields identical plans.
func TestGreedyParallelMatchesSerial(t *testing.T) {
	progs, err := workload.EvaluationPrograms(15, 1)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, topoIdx := range []int{1, 2, 3} {
		tp, err := network.TableIII(topoIdx, network.TofinoSpec())
		if err != nil {
			t.Fatal(err)
		}
		serial, err := (Greedy{}).Solve(merged, tp, Options{Workers: 1})
		if err != nil {
			t.Fatalf("topology %d serial: %v", topoIdx, err)
		}
		parallel, err := (Greedy{}).Solve(merged, tp, Options{Workers: 8})
		if err != nil {
			t.Fatalf("topology %d parallel: %v", topoIdx, err)
		}
		samePlan(t, tp.Name, serial, parallel)
	}
}

// TestExactParallelMatchesSerial checks that the parallel branch
// search reproduces the serial optimum bit for bit on an uncapped run.
func TestExactParallelMatchesSerial(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	bytes := []int{3, 1, 4, 1, 5, 9}
	g := chainTDG(t, names, bytes, 0.5)
	tp := twoMATSwitchTopo(t, 6)
	serial, err := (Exact{}).Solve(g, tp, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (Exact{}).Solve(g, tp, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Proven || !parallel.Proven {
		t.Fatalf("proven = %v/%v, want both true", serial.Proven, parallel.Proven)
	}
	samePlan(t, "exact", serial, parallel)
}

// TestGreedyDeadlineCutsImprovement is the regression test for the
// ImproveBudget fix: an Options.Deadline sooner than the 2 s default
// budget must stop the local search at the deadline, not at the
// budget, and still return a valid plan.
func TestGreedyDeadlineCutsImprovement(t *testing.T) {
	progs, err := workload.EvaluationPrograms(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := network.TableIII(2, network.TofinoSpec())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	plan, err := (Greedy{}).Solve(merged, tp, Options{Deadline: time.Now().Add(50 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	// The pre-fix code always ran the full 2 s improvement budget; the
	// generous margin keeps slow CI machines from flaking.
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("Solve took %v with a 50ms deadline", elapsed)
	}
	if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// TestPackMemoConsistency checks that the memoized PackStages returns
// independent maps that match a cold computation.
func TestPackMemoConsistency(t *testing.T) {
	names := []string{"a", "b"}
	bytes := []int{3}
	g := chainTDG(t, names, bytes, 0.4)
	tp := twoMATSwitchTopo(t, 4)
	sw, err := tp.Switch(0)
	if err != nil {
		t.Fatal(err)
	}
	rm := program.DefaultResourceModel
	first, err := PackStages(g, names, sw, rm)
	if err != nil {
		t.Fatal(err)
	}
	second, err := PackStages(g, names, sw, rm)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("memoized pack differs in size: %d vs %d", len(first), len(second))
	}
	for name, a := range first {
		if b := second[name]; a.Switch != b.Switch || a.Start != b.Start || a.End != b.End {
			t.Errorf("memoized pack differs for %s: %+v vs %+v", name, a, b)
		}
	}
	// The two calls must not alias: corrupting one result map must not
	// leak into a third call.
	for name := range first {
		first[name] = StagePlacement{Switch: 99}
		break
	}
	third, err := PackStages(g, names, sw, rm)
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range third {
		if b := second[name]; c.Switch != b.Switch || c.Start != b.Start || c.End != b.End {
			t.Errorf("cache aliased caller map for %s: %+v vs %+v", name, c, b)
		}
	}
}
