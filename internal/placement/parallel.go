package placement

import (
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for every i in [0, n) across at most workers
// goroutines. Work items are claimed from an atomic counter, so the
// call balances uneven item costs; fn must write its result into an
// i-indexed slot (never shared state) so that accumulation stays
// deterministic regardless of completion order. workers <= 1 (or n <=
// 1) degrades to a plain loop on the calling goroutine.
func parallelFor(n, workers int, fn func(i int)) {
	parallelForShard(n, workers, func(_, i int) { fn(i) })
}

// parallelForShard is parallelFor with the executing goroutine's index
// in [0, workers) passed alongside the item index, so callers can
// reuse per-goroutine scratch buffers instead of allocating per item.
func parallelForShard(n, workers int, fn func(shard, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}()
	}
	wg.Wait()
}
