package placement

import (
	"fmt"
	"sort"
	"time"

	"github.com/hermes-net/hermes/internal/network"
)

// The y(u,v,p) decision variables of problem P#1 choose which path each
// communicating switch pair uses. AddRoutes fixes them to shortest
// paths — optimal for t_e2e when links are uncongested — but when many
// pairs share links, coordination bytes concentrate: the maximum
// per-link piggyback load (MaxWireBytes) can exceed A_max considerably.
// OptimizeRoutes spreads pairs across the k shortest paths to minimize
// that per-link load, subject to a latency budget per pair.

// RouteOptions configure OptimizeRoutes.
type RouteOptions struct {
	// K is the number of candidate paths per pair (the size of the
	// P(u,v) sets materialized from the formulation). Default 3.
	K int
	// Stretch bounds each chosen path's latency to Stretch × the
	// shortest path's. Default 2.0; values below 1 are rejected.
	Stretch float64
}

func (o RouteOptions) withDefaults() (RouteOptions, error) {
	if o.K == 0 {
		o.K = 3
	}
	if o.K < 1 {
		return o, fmt.Errorf("placement: route K must be >= 1, got %d", o.K)
	}
	if o.Stretch == 0 {
		o.Stretch = 2.0
	}
	if o.Stretch < 1 {
		return o, fmt.Errorf("placement: route stretch must be >= 1, got %g", o.Stretch)
	}
	return o, nil
}

// OptimizeRoutes re-chooses the plan's routes among each pair's k
// shortest paths so the maximum per-link coordination bytes is
// minimized (greedy: pairs in decreasing byte order pick the candidate
// path minimizing the resulting worst link). It returns the achieved
// maximum per-link bytes.
func OptimizeRoutes(p *Plan, opts RouteOptions) (int, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return 0, err
	}
	pairs := p.PairBytes()
	if len(pairs) == 0 {
		p.Routes = map[RouteKey]network.Path{}
		return 0, nil
	}

	type pairLoad struct {
		key   RouteKey
		bytes int
	}
	ordered := make([]pairLoad, 0, len(pairs))
	for key, bytes := range pairs {
		ordered = append(ordered, pairLoad{key: key, bytes: bytes})
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].bytes != ordered[j].bytes {
			return ordered[i].bytes > ordered[j].bytes
		}
		if ordered[i].key.From != ordered[j].key.From {
			return ordered[i].key.From < ordered[j].key.From
		}
		return ordered[i].key.To < ordered[j].key.To
	})

	linkLoad := map[RouteKey]int{}
	routes := map[RouteKey]network.Path{}
	for _, pl := range ordered {
		cands, err := p.Topo.KShortestPaths(pl.key.From, pl.key.To, opts.K)
		if err != nil {
			return 0, fmt.Errorf("placement: routing %v: %w", pl.key, err)
		}
		budget := time.Duration(float64(cands[0].Latency) * opts.Stretch)
		best := -1
		bestWorst := 0
		for i, cand := range cands {
			if cand.Latency > budget {
				continue
			}
			worst := 0
			for h := 0; h+1 < len(cand.Switches); h++ {
				hop := RouteKey{From: cand.Switches[h], To: cand.Switches[h+1]}
				if load := linkLoad[hop] + pl.bytes; load > worst {
					worst = load
				}
			}
			if best < 0 || worst < bestWorst {
				best = i
				bestWorst = worst
			}
		}
		if best < 0 {
			best = 0 // the shortest path always satisfies the budget
		}
		chosen := cands[best]
		for h := 0; h+1 < len(chosen.Switches); h++ {
			hop := RouteKey{From: chosen.Switches[h], To: chosen.Switches[h+1]}
			linkLoad[hop] += pl.bytes
		}
		routes[pl.key] = chosen
	}
	p.Routes = routes

	max := 0
	for _, load := range linkLoad {
		if load > max {
			max = load
		}
	}
	return max, nil
}
