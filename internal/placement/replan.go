package placement

import (
	"fmt"
	"sort"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/tdg"
)

// ReplanMode selects how Replan recomputes a deployment after a drain.
type ReplanMode int

const (
	// ReplanAuto runs the incremental delta repair and falls back to a
	// full solve when the repair is infeasible, violates the ε bounds,
	// or degrades A_max beyond the quality ratio. The default.
	ReplanAuto ReplanMode = iota
	// ReplanIncremental runs only the delta repair and errors out when
	// it cannot produce an acceptable plan (no silent cold solve —
	// callers that budget replan latency want the failure, not a
	// multi-second surprise).
	ReplanIncremental
	// ReplanFull always re-solves from scratch (the pre-incremental
	// behavior).
	ReplanFull
)

// String implements fmt.Stringer.
func (m ReplanMode) String() string {
	switch m {
	case ReplanAuto:
		return "auto"
	case ReplanIncremental:
		return "incremental"
	case ReplanFull:
		return "full"
	default:
		return fmt.Sprintf("ReplanMode(%d)", int(m))
	}
}

// ParseReplanMode converts the CLI spelling of a mode.
func ParseReplanMode(s string) (ReplanMode, error) {
	switch s {
	case "auto", "":
		return ReplanAuto, nil
	case "incremental", "inc", "delta":
		return ReplanIncremental, nil
	case "full", "cold":
		return ReplanFull, nil
	default:
		return 0, fmt.Errorf("placement: unknown replan mode %q (want auto, incremental, or full)", s)
	}
}

// ReplanOptions extends the solver Options with churn-path knobs.
type ReplanOptions struct {
	Options
	// Mode selects the replan strategy; zero value is ReplanAuto.
	Mode ReplanMode
	// Topology, when non-nil, is the live topology to replan against
	// instead of the old plan's snapshot. The supervisor passes the
	// monitored topology here so the replan sees the current fault
	// overlay (down switches/links) — old.Topo is a clone frozen at the
	// previous solve and can be arbitrarily stale. The replan still
	// clones, so the returned plan owns an independent topology carrying
	// the fault state at replan time.
	Topology *network.Topology
	// FrontierDepth bounds the dependency frontier added to the dirty
	// set: MATs within this many TDG hops of a drained MAT become
	// movable during the repair polish (their assignments are kept as
	// the starting point). 0 means the default of 1; negative disables
	// the frontier (only drained MATs move).
	FrontierDepth int
	// QualityRatio bounds the repaired plan's A_max at
	// QualityRatio × the warm seed's pre-drain A_max (the constant-time
	// proxy for the cold-solve quality, which the greedy tracks
	// closely). Exceeding it triggers the full-solve fallback under
	// ReplanAuto and an error under ReplanIncremental. 0 means the
	// default of 1.5; negative disables the check.
	QualityRatio float64
	// Partition, when non-nil, switches the repair to the region-local
	// path (DESIGN.md §14): the dirty set is mapped onto the regions it
	// intersects, each dirty region is repaired concurrently on a
	// compact per-region compiled instance (hosts + region candidates,
	// never the full S² tables), and only quality failures escalate to
	// the overlapping-region boundary exchange before the gated full
	// solve. The partition must describe the replan topology's switch
	// ID space; lookups are by switch ID, so it survives topology
	// clones and fault overlays. nil keeps the whole-topology repair.
	Partition *network.Partition
}

func (o ReplanOptions) frontierDepth() int {
	if o.FrontierDepth == 0 {
		return 1
	}
	if o.FrontierDepth < 0 {
		return 0
	}
	return o.FrontierDepth
}

func (o ReplanOptions) qualityRatio() float64 {
	if o.QualityRatio == 0 {
		return 1.5
	}
	return o.QualityRatio
}

// ReplanPhases splits a replan's wall clock into its sequential
// phases; a zero field means the phase did not run. On the
// whole-topology path the repair spends Dirty + Repair + Polish +
// Gates; on the region-local path the concurrent per-region repairs
// (greedy re-placement and polish together) land in Regions, with
// Exchange covering the overlapping-region escalation. Fallback times
// the full solver after an abandoned repair. JSON field names are
// stable — bench baselines diff them across commits.
type ReplanPhases struct {
	// Dirty is the dirty-set construction (displaced MATs plus the
	// bounded TDG frontier).
	Dirty time.Duration `json:"dirty"`
	// Repair is the greedy re-placement of displaced MATs
	// (whole-topology path).
	Repair time.Duration `json:"repair"`
	// Polish is the bounded local-improve climb over the dirty set
	// (whole-topology path).
	Polish time.Duration `json:"polish"`
	// Gates is validation, the quality-ratio check, and the lint/equiv
	// hooks on the repaired plan.
	Gates time.Duration `json:"gates"`
	// Regions is the concurrent per-region repair fan-out
	// (region-local path; includes each region's greedy and polish,
	// plus the merge and materialization of the global plan).
	Regions time.Duration `json:"regions"`
	// Exchange is the overlapping-region boundary-exchange escalation.
	Exchange time.Duration `json:"exchange"`
	// Fallback is the full solver run after an abandoned repair (or
	// under ReplanFull).
	Fallback time.Duration `json:"fallback"`
}

// ReplanReport is the churn telemetry of one replan: which path
// produced the plan, why the repair was abandoned (if it was), and the
// migration cost.
type ReplanReport struct {
	// Mode is the requested mode.
	Mode ReplanMode
	// UsedRepair marks plans produced by the delta repair; false means
	// the full solver ran (ReplanFull, or an auto fallback).
	UsedRepair bool
	// FallbackReason is empty when the repair succeeded; otherwise the
	// reason the engine fell back (or, under ReplanIncremental, failed).
	FallbackReason string
	// DirtyMATs counts the MATs the repair re-placed or polished (the
	// drained set plus the dependency frontier).
	DirtyMATs int
	// MovedMATs is Diff(old, new): how many MATs changed hosting switch.
	MovedMATs int
	// Moved lists the MATs that changed hosting switch, sorted — the
	// incremental equivalence re-check keys its dirty-program set off
	// this (equiv.Rechecker).
	Moved []string
	// RepairTime is the wall-clock spent inside the repair pass
	// (including an abandoned attempt that fell back).
	RepairTime time.Duration
	// TotalTime is the end-to-end replan wall clock.
	TotalTime time.Duration
	// Phases breaks TotalTime into the replan's sequential phases.
	Phases ReplanPhases
	// UsedRegional marks repairs that ran the region-local path (a
	// Partition was supplied and the dirty set mapped onto it).
	UsedRegional bool
	// RegionsTouched lists the dirty regions the regional repair
	// operated on, ascending; nil off the regional path.
	RegionsTouched []int
	// RegionsWidened counts dirty regions whose local repair could not
	// restore feasibility alone and re-ran with the 2-hop widened
	// candidate set (the overlapping-region neighborhoods).
	RegionsWidened int
	// ExchangeRounds and ExchangeMoves report the overlapping-region
	// exchange escalation; both zero when the per-region repairs held
	// the quality gate on their own.
	ExchangeRounds int
	ExchangeMoves  int
}

// Replan recomputes a deployment after programmable switches are
// drained — taken out of MAT hosting for maintenance or after a
// partial failure, while still forwarding transit traffic (full
// node/link failures change the graph itself and belong to the routing
// layer). It returns a fresh plan over the same TDG with the drained
// switches excluded, repairing the old assignment incrementally when
// possible (ReplanAuto); the solver is only consulted when the repair
// falls back to a from-scratch solve.
//
// Replanning is stateless with respect to the old placement: stateful
// MATs (counters) must be migrated by the operator; the data plane
// simulator models state as per-MAT, so replaying traffic through the
// new plan continues the same register state.
func Replan(old *Plan, solver Solver, opts Options, drained ...network.SwitchID) (*Plan, error) {
	plan, _, err := ReplanWithOptions(old, solver, ReplanOptions{Options: opts}, drained...)
	return plan, err
}

// ReplanWithOptions is Replan with an explicit mode and churn
// telemetry.
func ReplanWithOptions(old *Plan, solver Solver, ropts ReplanOptions, drained ...network.SwitchID) (*Plan, *ReplanReport, error) {
	start := time.Now()
	if old == nil || old.Graph == nil || old.Topo == nil {
		return nil, nil, fmt.Errorf("placement: replan of nil or incomplete plan")
	}
	if solver == nil {
		solver = Greedy{}
	}
	if err := ropts.canceled(); err != nil {
		return nil, nil, fmt.Errorf("placement: replan canceled: %w", err)
	}
	base := ropts.Topology
	if base == nil {
		base = old.Topo
	}
	// A replan must have something to route around: explicit drains, or a
	// fault overlay on the live topology (the supervisor's case — down
	// switches displace their MATs exactly like drains, but reversibly).
	if len(drained) == 0 && !base.HasFaults() {
		return nil, nil, fmt.Errorf("placement: replan with no drained switches")
	}
	topo := base.Clone()
	drainedSet := make(map[network.SwitchID]bool, len(drained))
	for _, id := range drained {
		sw, err := topo.Switch(id)
		if err != nil {
			return nil, nil, fmt.Errorf("placement: replan: %w", err)
		}
		if !sw.Programmable {
			return nil, nil, fmt.Errorf("placement: replan: switch %q is not programmable", sw.Name)
		}
		sw.Programmable = false
		sw.Stages = 0
		sw.StageCapacity = 0
		drainedSet[id] = true
	}
	if len(topo.ProgrammableSwitches()) == 0 {
		return nil, nil, fmt.Errorf("placement: replan drains every programmable switch")
	}

	if ropts.Partition != nil && ropts.Partition.Topology().NumSwitches() != topo.NumSwitches() {
		return nil, nil, fmt.Errorf("placement: replan partition covers %d switches, topology has %d",
			ropts.Partition.Topology().NumSwitches(), topo.NumSwitches())
	}

	rep := &ReplanReport{Mode: ropts.Mode}
	if ropts.Mode != ReplanFull {
		repairStart := time.Now()
		var plan *Plan
		var dirty int
		var rerr error
		if ropts.Partition != nil {
			plan, dirty, rerr = repairRegional(old, topo, ropts, drainedSet, rep)
		} else {
			plan, dirty, rerr = repairPlan(old, topo, ropts, drainedSet, rep)
		}
		rep.RepairTime = time.Since(repairStart)
		rep.DirtyMATs = dirty
		if rerr == nil {
			rep.UsedRepair = true
			rep.Moved, _ = MovedNames(old, plan)
			rep.MovedMATs = len(rep.Moved)
			rep.TotalTime = time.Since(start)
			plan.SolveTime = rep.TotalTime
			return plan, rep, nil
		}
		rep.FallbackReason = rerr.Error()
		if ropts.Mode == ReplanIncremental {
			rep.TotalTime = time.Since(start)
			return nil, rep, fmt.Errorf("placement: incremental replan: %w", rerr)
		}
	}

	fallbackStart := time.Now()
	plan, err := solver.Solve(old.Graph, topo, ropts.Options)
	rep.Phases.Fallback = time.Since(fallbackStart)
	if err != nil {
		rep.TotalTime = time.Since(start)
		return nil, rep, fmt.Errorf("placement: replan: %w", err)
	}
	rep.Moved, _ = MovedNames(old, plan)
	rep.MovedMATs = len(rep.Moved)
	rep.TotalTime = time.Since(start)
	return plan, rep, nil
}

// repairPlan is the delta path: re-place only the MATs hosted on
// drained switches (plus a bounded dependency frontier), keeping every
// other assignment, then polish the dirty set with the incremental
// pair-byte local search. It returns the repaired plan and the dirty
// set size, or an error describing why the repair cannot stand (the
// caller decides between fallback and failure).
func repairPlan(old *Plan, topo *network.Topology, ropts ReplanOptions, drainedSet map[network.SwitchID]bool, rep *ReplanReport) (*Plan, int, error) {
	g := old.Graph
	rm := ropts.resourceModel()

	phase := time.Now()
	displaced, dirty := dirtySets(old, topo, ropts, drainedSet)
	rep.Phases.Dirty = time.Since(phase)
	if len(displaced) == 0 {
		// Nothing hosted there: the old assignment is the repair. Routes
		// may still change (the drained switch keeps forwarding, so
		// shortest paths survive the drain), so re-materialize.
		plan, err := materializeAssignment(g, topo, assignmentOf(old), rm)
		if err != nil {
			return nil, 0, err
		}
		return finishRepairTimed(plan, old, ropts, 0, rep)
	}
	phase = time.Now()

	// Seed assignment: everything but the displaced MATs keeps its
	// switch.
	assign := make(map[string]network.SwitchID, g.NumNodes())
	for name, sp := range old.Assignments {
		if !displaced[name] {
			assign[name] = sp.Switch
		}
	}

	// Greedy re-placement of the displaced MATs in topological order:
	// each lands on the feasible switch minimizing the resulting
	// (A_max, switch ID) against the already-assigned neighbors.
	// Candidates are scored incrementally against the compiled flat
	// pair-byte table — allocation-free O(deg + pairs) per candidate
	// (CompiledInstance.PlaceScore), the same kernels as the
	// local-improve climb — instead of an O(E) rescan over string-keyed
	// maps, which would dominate the repair at 50 programs.
	order, err := g.TopoSort()
	if err != nil {
		return nil, len(dirty), err
	}
	prog := topo.ProgrammableSwitches()
	residents := map[network.SwitchID][]string{}
	for name, u := range assign {
		residents[u] = append(residents[u], name)
	}
	ci := Compile(g, topo, rm)
	dense := ci.DenseAssign(assign)
	pt := ci.NewPairTable()
	ci.FillPairTable(dense, pt)
	ms := ci.NewMoveScratch()
	cyc := ci.NewCycleScratch()
	poll := newDeadlinePoller(ropts.Deadline, 16).withCancel(ropts.done())
	// Under a traffic matrix, displaced MATs re-land by weighted place
	// score (the same objective the polish descends), with the
	// structural score as the tie-break; the quality-ratio gate in
	// finishRepair still bounds the structural A_max.
	var wt *WeightTable
	var curSum int64
	if ropts.Traffic != nil {
		var werr error
		if wt, werr = ci.CompileWeights(ropts.Traffic); werr != nil {
			return nil, len(dirty), werr
		}
		curSum, _ = wt.Score(pt)
	}
	type cand struct {
		u    network.SwitchID
		w    int64
		amax int
	}
	cands := make([]cand, 0, len(prog))
	for _, name := range order {
		if !displaced[name] {
			continue
		}
		if poll.Expired() {
			return nil, len(dirty), fmt.Errorf("deadline expired or replan canceled during repair placement")
		}
		x := ci.Index[name]
		cands = cands[:0]
		//hermes:hot
		for _, u := range prog {
			c := cand{u: u, amax: ci.PlaceScore(dense, pt, ms, x, int32(u))}
			if wt != nil {
				ws, wm := ci.PlaceScoreWeighted(dense, pt, ms, wt, x, int32(u), curSum)
				c.w = ropts.TrafficObjective.pick(ws, wm)
			}
			cands = append(cands, c)
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].w != cands[j].w {
				return cands[i].w < cands[j].w
			}
			if cands[i].amax != cands[j].amax {
				return cands[i].amax < cands[j].amax
			}
			return cands[i].u < cands[j].u
		})
		placed := false
		for _, c := range cands {
			sw, err := topo.Switch(c.u)
			if err != nil {
				continue
			}
			if !FitsSwitch(g, append(append([]string(nil), residents[c.u]...), name), sw, rm) {
				continue
			}
			dense[x] = int32(c.u)
			if !ci.AssignmentAcyclic(dense, cyc) {
				dense[x] = -1
				continue
			}
			residents[c.u] = append(residents[c.u], name)
			assign[name] = c.u
			ci.ApplyPlace(dense, pt, x, int32(c.u))
			if wt != nil {
				curSum, _ = wt.Score(pt)
			}
			placed = true
			break
		}
		if !placed {
			return nil, len(dirty), fmt.Errorf("no feasible switch for displaced MAT %q", name)
		}
	}

	plan, err := materializeAssignment(g, topo, assign, rm)
	if err != nil {
		return nil, len(dirty), err
	}
	rep.Phases.Repair = time.Since(phase)

	// Polish only the dirty set with the incremental pair-byte scorer,
	// honoring the deadline (counter-gated inside the climb). The
	// repair's improve budget scales with the dirty set rather than the
	// cold solve's fixed 2s — the climb converges in a handful of passes
	// over |dirty| MATs.
	phase = time.Now()
	improveDeadline := time.Now().Add(2 * time.Second)
	if !ropts.Deadline.IsZero() && ropts.Deadline.Before(improveDeadline) {
		improveDeadline = ropts.Deadline
	}
	if err := localImproveFiltered(plan, ropts.Options, rm, improveDeadline, dirty); err != nil {
		return nil, len(dirty), err
	}
	rep.Phases.Polish = time.Since(phase)
	return finishRepairTimed(plan, old, ropts, len(dirty), rep)
}

// dirtySets computes the repair's working sets: displaced MATs
// (stranded on drained or down switches) and the dirty set (displaced
// plus the dependency frontier — MATs within frontierDepth TDG hops,
// which keep their switch as the starting point but join the polish,
// giving the local search room to co-locate across the healed cut).
func dirtySets(old *Plan, topo *network.Topology, ropts ReplanOptions, drainedSet map[network.SwitchID]bool) (displaced, dirty map[string]bool) {
	g := old.Graph
	displaced = map[string]bool{}
	for name, sp := range old.Assignments {
		if drainedSet[sp.Switch] || topo.SwitchIsDown(sp.Switch) {
			displaced[name] = true
		}
	}
	dirty = map[string]bool{}
	for name := range displaced {
		dirty[name] = true
	}
	frontier := displaced
	for depth := 0; depth < ropts.frontierDepth(); depth++ {
		next := map[string]bool{}
		for name := range frontier {
			for _, e := range g.OutEdges(name) {
				if !dirty[e.To] {
					next[e.To] = true
				}
			}
			for _, e := range g.InEdges(name) {
				if !dirty[e.From] {
					next[e.From] = true
				}
			}
		}
		for name := range next {
			dirty[name] = true
		}
		frontier = next
	}
	return displaced, dirty
}

// finishRepairTimed is finishRepair with the gate wall clock recorded
// in the report's phase breakdown.
func finishRepairTimed(plan *Plan, old *Plan, ropts ReplanOptions, dirty int, rep *ReplanReport) (*Plan, int, error) {
	start := time.Now()
	p, d, err := finishRepair(plan, old, ropts, dirty)
	rep.Phases.Gates += time.Since(start)
	return p, d, err
}

// placeScore computes the A_max that results from placing the
// currently-unassigned MAT on switch u, everything else fixed: the
// MAT's incident edges toward assigned peers land in the delta scratch
// (contents discarded), which is then overlaid on the pair table.
func placeScore(g *tdg.Graph, assign map[string]network.SwitchID, pair, delta map[RouteKey]int, name string, u network.SwitchID) int {
	for k := range delta {
		delete(delta, k)
	}
	for _, e := range g.OutEdges(name) {
		if peer, ok := assign[e.To]; ok && peer != u {
			delta[RouteKey{From: u, To: peer}] += e.MetadataBytes
		}
	}
	for _, e := range g.InEdges(name) {
		if peer, ok := assign[e.From]; ok && peer != u {
			delta[RouteKey{From: peer, To: u}] += e.MetadataBytes
		}
	}
	max := 0
	for k, b := range pair {
		if d, ok := delta[k]; ok {
			b += d
		}
		if b > max {
			max = b
		}
	}
	for k, d := range delta {
		if _, ok := pair[k]; !ok && d > max {
			max = d
		}
	}
	return max
}

// applyPlacement commits the MAT's cross-pair contributions to the
// pair table once its switch is final.
func applyPlacement(g *tdg.Graph, assign map[string]network.SwitchID, pair map[RouteKey]int, name string, u network.SwitchID) {
	for _, e := range g.OutEdges(name) {
		if peer, ok := assign[e.To]; ok && peer != u {
			pair[RouteKey{From: u, To: peer}] += e.MetadataBytes
		}
	}
	for _, e := range g.InEdges(name) {
		if peer, ok := assign[e.From]; ok && peer != u {
			pair[RouteKey{From: peer, To: u}] += e.MetadataBytes
		}
	}
}

// finishRepair applies the ε-bound, quality-ratio, and lint gates to a
// repaired plan and stamps its provenance.
func finishRepair(plan *Plan, old *Plan, ropts ReplanOptions, dirty int) (*Plan, int, error) {
	if err := plan.Validate(ropts.resourceModel(), ropts.Epsilon1, ropts.epsilon2(len(plan.Topo.ProgrammableSwitches()))); err != nil {
		return nil, dirty, fmt.Errorf("repair violates plan invariants: %w", err)
	}
	if ratio := ropts.qualityRatio(); ratio > 0 {
		oldA := old.AMax()
		if newA := plan.AMax(); oldA > 0 && float64(newA) > ratio*float64(oldA) {
			return nil, dirty, fmt.Errorf("repair A_max %dB exceeds %.2g x the %dB warm seed", newA, ratio, oldA)
		}
	}
	name := old.SolverName
	if name == "" {
		name = "Hermes"
	}
	plan.SolverName = name + "+repair"
	out, err := finishPlan(plan, ropts.Options)
	if err != nil {
		return nil, dirty, err
	}
	return out, dirty, nil
}

// assignmentOf flattens a plan to its MAT→switch map.
func assignmentOf(p *Plan) map[string]network.SwitchID {
	out := make(map[string]network.SwitchID, len(p.Assignments))
	for name, sp := range p.Assignments {
		out[name] = sp.Switch
	}
	return out
}

// MovedNames lists the MATs that changed hosting switch between two
// plans over the same TDG, sorted — Diff with identities.
func MovedNames(a, b *Plan) ([]string, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("placement: diff of nil plan")
	}
	if !sameMATSet(a.Graph, b.Graph) {
		return nil, fmt.Errorf("placement: diff across different TDGs")
	}
	var moved []string
	for name := range a.Assignments {
		sb, ok := b.Assignments[name]
		if !ok {
			return nil, fmt.Errorf("placement: plan B misses MAT %q", name)
		}
		if a.Assignments[name].Switch != sb.Switch {
			moved = append(moved, name)
		}
	}
	sort.Strings(moved)
	return moved, nil
}

// Diff reports how many MATs changed hosting switch between two plans
// over the same TDG — the migration cost of a replan. The two plans
// must cover the same MAT set by name; equal node counts over
// different MATs are rejected, not silently diffed.
func Diff(a, b *Plan) (moved int, err error) {
	if a == nil || b == nil {
		return 0, fmt.Errorf("placement: diff of nil plan")
	}
	if !sameMATSet(a.Graph, b.Graph) {
		return 0, fmt.Errorf("placement: diff across different TDGs")
	}
	for name := range a.Assignments {
		sb, ok := b.Assignments[name]
		if !ok {
			return 0, fmt.Errorf("placement: plan B misses MAT %q", name)
		}
		if a.Assignments[name].Switch != sb.Switch {
			moved++
		}
	}
	return moved, nil
}
