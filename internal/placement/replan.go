package placement

import (
	"fmt"

	"github.com/hermes-net/hermes/internal/network"
)

// Replan recomputes a deployment after programmable switches are
// drained — taken out of MAT hosting for maintenance or after a
// partial failure, while still forwarding transit traffic (full
// node/link failures change the graph itself and belong to the routing
// layer). It returns a fresh plan over the same TDG produced by the
// given solver with the drained switches excluded.
//
// Replanning is stateless with respect to the old placement: stateful
// MATs (counters) must be migrated by the operator; the data plane
// simulator models state as per-MAT, so replaying traffic through the
// new plan continues the same register state.
func Replan(old *Plan, solver Solver, opts Options, drained ...network.SwitchID) (*Plan, error) {
	if old == nil || old.Graph == nil || old.Topo == nil {
		return nil, fmt.Errorf("placement: replan of nil or incomplete plan")
	}
	if solver == nil {
		solver = Greedy{}
	}
	if len(drained) == 0 {
		return nil, fmt.Errorf("placement: replan with no drained switches")
	}
	topo := old.Topo.Clone()
	for _, id := range drained {
		sw, err := topo.Switch(id)
		if err != nil {
			return nil, fmt.Errorf("placement: replan: %w", err)
		}
		if !sw.Programmable {
			return nil, fmt.Errorf("placement: replan: switch %q is not programmable", sw.Name)
		}
		sw.Programmable = false
		sw.Stages = 0
		sw.StageCapacity = 0
	}
	if len(topo.ProgrammableSwitches()) == 0 {
		return nil, fmt.Errorf("placement: replan drains every programmable switch")
	}
	plan, err := solver.Solve(old.Graph, topo, opts)
	if err != nil {
		return nil, fmt.Errorf("placement: replan: %w", err)
	}
	return plan, nil
}

// Diff reports how many MATs changed hosting switch between two plans
// over the same TDG — the migration cost of a replan.
func Diff(a, b *Plan) (moved int, err error) {
	if a == nil || b == nil {
		return 0, fmt.Errorf("placement: diff of nil plan")
	}
	if a.Graph.NumNodes() != b.Graph.NumNodes() {
		return 0, fmt.Errorf("placement: diff across different TDGs")
	}
	for name := range a.Assignments {
		sb, ok := b.Assignments[name]
		if !ok {
			return 0, fmt.Errorf("placement: plan B misses MAT %q", name)
		}
		if a.Assignments[name].Switch != sb.Switch {
			moved++
		}
	}
	return moved, nil
}
