package placement

import (
	"strings"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
)

// solvedChainPlan deploys a->b->c (req 0.5) over n two-stage switches.
func solvedChainPlan(t *testing.T, n int) *Plan {
	t.Helper()
	g := chainTDG(t, []string{"a", "b", "c"}, []int{1, 4}, 0.5)
	plan, err := Greedy{}.Solve(g, twoMATSwitchTopo(t, n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestReplanMovesOffDrainedSwitch(t *testing.T) {
	old := solvedChainPlan(t, 3)
	used := old.UsedSwitches()
	if len(used) == 0 {
		t.Fatal("fixture must occupy at least one switch")
	}
	drained := used[0]

	fresh, err := Replan(old, nil, Options{}, drained)
	if err != nil {
		t.Fatal(err)
	}
	for name, sp := range fresh.Assignments {
		if sp.Switch == drained {
			t.Errorf("MAT %q still hosted on drained switch %d", name, drained)
		}
	}
	if err := fresh.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatalf("replanned deployment must validate: %v", err)
	}
	// The old plan and its topology are untouched (Replan clones).
	sw, err := old.Topo.Switch(drained)
	if err != nil {
		t.Fatal(err)
	}
	if !sw.Programmable {
		t.Error("Replan must not mutate the original topology")
	}

	moved, err := Diff(old, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Error("draining an occupied switch must move at least one MAT")
	}
}

func TestReplanLintGated(t *testing.T) {
	old := solvedChainPlan(t, 3)
	drained := old.UsedSwitches()[0]
	fresh, err := Replan(old, nil, Options{Lint: true}, drained)
	if err != nil {
		t.Fatalf("lint-gated replan of a feasible instance must succeed: %v", err)
	}
	if fresh == nil {
		t.Fatal("nil plan")
	}
}

func TestReplanEdgeCases(t *testing.T) {
	// Draining a non-programmable switch is a caller error.
	tp := twoMATSwitchTopo(t, 3)
	dumb := tp.AddSwitch(network.Switch{Programmable: false, TransitLatency: time.Microsecond})
	if err := tp.AddLink(2, dumb, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	g := chainTDG(t, []string{"a", "b", "c"}, []int{1, 4}, 0.5)
	plan, err := Greedy{}.Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replan(plan, nil, Options{}, dumb); err == nil {
		t.Error("draining a non-programmable switch must be rejected")
	}

	// Infeasible after drain: 3 MATs of 0.5 need 2 switches; draining
	// one of two leaves capacity for only 2 MATs.
	tight := solvedChainPlan(t, 2)
	if _, err := Replan(tight, nil, Options{}, tight.UsedSwitches()[0]); err == nil {
		t.Error("replan must fail when the drained capacity cannot be absorbed")
	}
}

func TestDiffAcrossDifferentTDGs(t *testing.T) {
	p := solvedChainPlan(t, 3)
	other, err := Greedy{}.Solve(chainTDG(t, []string{"x", "y"}, []int{1}, 0.5), twoMATSwitchTopo(t, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Diff(p, other); err == nil {
		t.Error("diff across different TDGs must be rejected")
	}
}

// TestSwitchOrderNonDAG pins the satellite requirement that ordering
// errors carry switch identifiers: a plan whose contracted switch
// graph is cyclic must name the stuck switches.
func TestSwitchOrderNonDAG(t *testing.T) {
	g := chainTDG(t, []string{"a", "b", "c"}, []int{1, 1}, 0.5)
	tp := twoMATSwitchTopo(t, 2)
	mk := func(sw network.SwitchID, stage int) StagePlacement {
		return StagePlacement{Switch: sw, Start: stage, End: stage, PerStage: []float64{0.5}}
	}
	path01, err := tp.ShortestPath(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	path10, err := tp.ShortestPath(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := &Plan{
		Graph: g, Topo: tp,
		Assignments: map[string]StagePlacement{
			"a": mk(0, 0), "b": mk(1, 0), "c": mk(0, 1),
		},
		Routes: map[RouteKey]network.Path{
			{From: 0, To: 1}: path01,
			{From: 1, To: 0}: path10,
		},
	}
	_, err = p.SwitchOrder()
	if err == nil {
		t.Fatal("cyclic switch graph must fail SwitchOrder")
	}
	for _, want := range []string{"cyclic", "switch 0", "switch 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("SwitchOrder error must contain %q, got: %v", want, err)
		}
	}
}
