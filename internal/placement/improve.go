package placement

import (
	"sort"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
)

// localImprove runs a bounded first-improvement hill climb over the
// greedy plan: it tries moving each MAT to another occupied switch and
// keeps the move when it strictly reduces (A_max, total cross bytes)
// while preserving every constraint (stage packing, switch-order
// acyclicity, ε bounds). The paper's Algorithm 2 stops at the segment
// placement; this refinement is an extension that narrows the
// heuristic's gap to the optimum at negligible cost, since contiguous
// topological segmentation cannot express every good partition.
func localImprove(p *Plan, opts Options, rm program.ResourceModel, deadline time.Time) error {
	assign := map[string]network.SwitchID{}
	for name, sp := range p.Assignments {
		assign[name] = sp.Switch
	}
	used := usedSwitches(assign)
	bestA, bestCross := scoreAssignment(p, assign)

	names := p.Graph.NodeNames()
	sort.Strings(names)

	const maxPasses = 4
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for _, name := range names {
			if !deadline.IsZero() && time.Now().After(deadline) {
				break
			}
			cur := assign[name]
			for _, cand := range used {
				if cand == cur {
					continue
				}
				assign[name] = cand
				a, cross := scoreAssignment(p, assign)
				if a > bestA || (a == bestA && cross >= bestCross) {
					assign[name] = cur
					continue
				}
				if !moveFeasible(p, assign, opts, rm, cur, cand) {
					assign[name] = cur
					continue
				}
				bestA, bestCross = a, cross
				cur = cand
				improved = true
			}
			assign[name] = cur
		}
		if !improved {
			break
		}
	}

	// Rebuild the plan from the (possibly) improved assignment.
	rebuilt, err := materializeAssignment(p.Graph, p.Topo, assign, rm)
	if err != nil {
		return err
	}
	p.Assignments = rebuilt.Assignments
	p.Routes = rebuilt.Routes
	return nil
}

func usedSwitches(assign map[string]network.SwitchID) []network.SwitchID {
	seen := map[network.SwitchID]bool{}
	for _, u := range assign {
		seen[u] = true
	}
	out := make([]network.SwitchID, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scoreAssignment computes (A_max, total cross bytes) for a raw
// assignment without materializing stages.
func scoreAssignment(p *Plan, assign map[string]network.SwitchID) (int, int) {
	pair := map[RouteKey]int{}
	total := 0
	for _, e := range p.Graph.EdgeList() {
		ua, ub := assign[e.From], assign[e.To]
		if ua == ub {
			continue
		}
		pair[RouteKey{From: ua, To: ub}] += e.MetadataBytes
		total += e.MetadataBytes
	}
	max := 0
	for _, b := range pair {
		if b > max {
			max = b
		}
	}
	return max, total
}

// moveFeasible validates an assignment after a move that touched the
// two given switches: both must still pack, and the contracted switch
// graph must stay acyclic (with ε1 respected when set).
func moveFeasible(p *Plan, assign map[string]network.SwitchID, opts Options, rm program.ResourceModel, touched ...network.SwitchID) bool {
	bySwitch := map[network.SwitchID][]string{}
	for name, u := range assign {
		bySwitch[u] = append(bySwitch[u], name)
	}
	for _, u := range touched {
		names := bySwitch[u]
		if len(names) == 0 {
			continue
		}
		sw, err := p.Topo.Switch(u)
		if err != nil {
			return false
		}
		if !FitsSwitch(p.Graph, names, sw, rm) {
			return false
		}
	}
	// Switch-order acyclicity over the whole assignment.
	adj := map[network.SwitchID]map[network.SwitchID]bool{}
	indeg := map[network.SwitchID]int{}
	nodes := map[network.SwitchID]bool{}
	for _, u := range assign {
		nodes[u] = true
	}
	for _, e := range p.Graph.EdgeList() {
		ua, ub := assign[e.From], assign[e.To]
		if ua == ub {
			continue
		}
		if adj[ua] == nil {
			adj[ua] = map[network.SwitchID]bool{}
		}
		if !adj[ua][ub] {
			adj[ua][ub] = true
			indeg[ub]++
		}
	}
	var ready []network.SwitchID
	for u := range nodes {
		if indeg[u] == 0 {
			ready = append(ready, u)
		}
	}
	count := 0
	for len(ready) > 0 {
		u := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		count++
		for v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if count != len(nodes) {
		return false
	}
	// ε1 check on communicating pairs.
	if opts.Epsilon1 > 0 {
		var total time.Duration
		seen := map[RouteKey]bool{}
		for _, e := range p.Graph.EdgeList() {
			ua, ub := assign[e.From], assign[e.To]
			if ua == ub {
				continue
			}
			key := RouteKey{From: ua, To: ub}
			if seen[key] {
				continue
			}
			seen[key] = true
			sp, err := p.Topo.ShortestPath(ua, ub)
			if err != nil {
				return false
			}
			total += sp.Latency
		}
		if total > opts.Epsilon1 {
			return false
		}
	}
	return true
}
