package placement

import (
	"sort"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
)

// localImprove runs a bounded first-improvement hill climb over the
// greedy plan: it tries moving each MAT to another occupied switch and
// keeps the move when it strictly reduces (A_max, total cross bytes)
// while preserving every constraint (stage packing, switch-order
// acyclicity, ε bounds). The paper's Algorithm 2 stops at the segment
// placement; this refinement is an extension that narrows the
// heuristic's gap to the optimum at negligible cost, since contiguous
// topological segmentation cannot express every good partition.
//
// Candidate moves are scored incrementally — O(deg + pairs) per
// candidate against a maintained pair-byte table instead of an O(E)
// rescan — and the score phase for one MAT's candidate switches fans
// out across opts.Workers goroutines. A candidate's score describes
// the absolute state "MAT on that switch, everything else fixed", so
// it is independent of both evaluation order and any acceptance made
// earlier in the same candidate loop; the serial acceptance walk that
// follows therefore reproduces the sequential first-improvement result
// exactly for every worker count.
func localImprove(p *Plan, opts Options, rm program.ResourceModel, deadline time.Time) error {
	return localImproveFiltered(p, opts, rm, deadline, nil)
}

// localImproveFiltered is localImprove restricted to the named MATs
// when only is non-nil: the delta-repair pass of Replan polishes just
// the dirty set this way, leaving the untouched region's assignments
// (and their pair bytes) as fixed context. The deadline is polled
// through a counter-gated clock read, not per MAT.
func localImproveFiltered(p *Plan, opts Options, rm program.ResourceModel, deadline time.Time, only map[string]bool) error {
	st := newImproveState(p)
	used := usedSwitches(st.assignMap)
	bestA, bestCross := st.score()
	workers := opts.workers()
	poll := newDeadlinePoller(deadline, 32)

	type candScore struct {
		a, cross int
		valid    bool
	}
	scores := make([]candScore, len(used))
	// One scratch delta map per scoring goroutine.
	scratches := make([]map[RouteKey]int, workers)
	for i := range scratches {
		scratches[i] = map[RouteKey]int{}
	}

	const maxPasses = 4
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for xi, name := range st.names {
			if only != nil && !only[name] {
				continue
			}
			if poll.Expired() {
				break
			}
			cur := st.assign[xi]
			// Score phase: pure concurrent reads of the shared state.
			parallelForShard(len(used), workers, func(shard, ci int) {
				if used[ci] == cur {
					scores[ci] = candScore{}
					return
				}
				a, cross := st.evalMove(xi, used[ci], scratches[shard])
				scores[ci] = candScore{a: a, cross: cross, valid: true}
			})
			// Acceptance phase: sequential first-improvement walk in
			// candidate order, identical to the serial algorithm.
			for ci, cand := range used {
				sc := scores[ci]
				if !sc.valid || cand == cur {
					continue
				}
				if sc.a > bestA || (sc.a == bestA && sc.cross >= bestCross) {
					continue
				}
				st.assignMap[name] = cand
				if !moveFeasible(p, st.assignMap, opts, rm, cur, cand) {
					st.assignMap[name] = cur
					continue
				}
				st.applyMove(xi, cand)
				bestA, bestCross = sc.a, sc.cross
				cur = cand
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	// Rebuild the plan from the (possibly) improved assignment.
	rebuilt, err := materializeAssignment(p.Graph, p.Topo, st.assignMap, rm)
	if err != nil {
		return err
	}
	p.Assignments = rebuilt.Assignments
	p.Routes = rebuilt.Routes
	return nil
}

// improveEdge is one TDG edge in index space.
type improveEdge struct {
	from, to int
	bytes    int
}

// improveState maintains the incremental scoring structures of the
// hill climb: the assignment in index space, the per-ordered-pair
// cross-byte table, and the running total of cross bytes. Entries in
// pairBytes may decay to zero; they contribute nothing to A_max (which
// is floored at zero, exactly like the full rescan).
type improveState struct {
	p         *Plan
	names     []string
	assign    []network.SwitchID
	assignMap map[string]network.SwitchID
	edges     []improveEdge
	incident  [][]int
	pairBytes map[RouteKey]int
	total     int
}

func newImproveState(p *Plan) *improveState {
	names := p.Graph.NodeNames()
	sort.Strings(names)
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	st := &improveState{
		p:         p,
		names:     names,
		assign:    make([]network.SwitchID, len(names)),
		assignMap: make(map[string]network.SwitchID, len(names)),
		incident:  make([][]int, len(names)),
		pairBytes: map[RouteKey]int{},
	}
	for name, sp := range p.Assignments {
		st.assign[idx[name]] = sp.Switch
		st.assignMap[name] = sp.Switch
	}
	for _, e := range p.Graph.EdgeList() {
		ei := len(st.edges)
		f, t := idx[e.From], idx[e.To]
		st.edges = append(st.edges, improveEdge{from: f, to: t, bytes: e.MetadataBytes})
		st.incident[f] = append(st.incident[f], ei)
		st.incident[t] = append(st.incident[t], ei)
		ua, ub := st.assign[f], st.assign[t]
		if ua != ub {
			st.pairBytes[RouteKey{From: ua, To: ub}] += e.MetadataBytes
			st.total += e.MetadataBytes
		}
	}
	return st
}

// score returns the current (A_max, total cross bytes).
func (st *improveState) score() (int, int) {
	max := 0
	for _, b := range st.pairBytes {
		if b > max {
			max = b
		}
	}
	return max, st.total
}

// evalMove computes the absolute (A_max, total cross bytes) of the
// assignment with MAT x on switch c and every other MAT unchanged,
// without mutating the state. delta is caller-provided scratch (its
// contents are discarded); O(deg(x) + |pairBytes|).
func (st *improveState) evalMove(x int, c network.SwitchID, delta map[RouteKey]int) (int, int) {
	for k := range delta {
		delete(delta, k)
	}
	cross := st.total
	old := st.assign[x]
	for _, ei := range st.incident[x] {
		e := st.edges[ei]
		var peer network.SwitchID
		var oldKey, newKey RouteKey
		if e.from == x {
			peer = st.assign[e.to]
			oldKey = RouteKey{From: old, To: peer}
			newKey = RouteKey{From: c, To: peer}
		} else {
			peer = st.assign[e.from]
			oldKey = RouteKey{From: peer, To: old}
			newKey = RouteKey{From: peer, To: c}
		}
		if peer != old {
			delta[oldKey] -= e.bytes
			cross -= e.bytes
		}
		if peer != c {
			delta[newKey] += e.bytes
			cross += e.bytes
		}
	}
	max := 0
	for k, b := range st.pairBytes {
		if d, ok := delta[k]; ok {
			b += d
		}
		if b > max {
			max = b
		}
	}
	for k, d := range delta {
		if _, ok := st.pairBytes[k]; !ok && d > max {
			max = d
		}
	}
	return max, cross
}

// applyMove commits MAT x to switch c, updating the pair table, the
// cross-byte total, and both assignment views.
func (st *improveState) applyMove(x int, c network.SwitchID) {
	old := st.assign[x]
	for _, ei := range st.incident[x] {
		e := st.edges[ei]
		var peer network.SwitchID
		var oldKey, newKey RouteKey
		if e.from == x {
			peer = st.assign[e.to]
			oldKey = RouteKey{From: old, To: peer}
			newKey = RouteKey{From: c, To: peer}
		} else {
			peer = st.assign[e.from]
			oldKey = RouteKey{From: peer, To: old}
			newKey = RouteKey{From: peer, To: c}
		}
		if peer != old {
			st.pairBytes[oldKey] -= e.bytes
			st.total -= e.bytes
		}
		if peer != c {
			st.pairBytes[newKey] += e.bytes
			st.total += e.bytes
		}
	}
	st.assign[x] = c
	st.assignMap[st.names[x]] = c
}

func usedSwitches(assign map[string]network.SwitchID) []network.SwitchID {
	seen := map[network.SwitchID]bool{}
	for _, u := range assign {
		seen[u] = true
	}
	out := make([]network.SwitchID, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// moveFeasible validates an assignment after a move that touched the
// two given switches: both must still pack, and the contracted switch
// graph must stay acyclic (with ε1 respected when set).
func moveFeasible(p *Plan, assign map[string]network.SwitchID, opts Options, rm program.ResourceModel, touched ...network.SwitchID) bool {
	bySwitch := map[network.SwitchID][]string{}
	for name, u := range assign {
		bySwitch[u] = append(bySwitch[u], name)
	}
	for _, u := range touched {
		names := bySwitch[u]
		if len(names) == 0 {
			continue
		}
		sw, err := p.Topo.Switch(u)
		if err != nil {
			return false
		}
		if !FitsSwitch(p.Graph, names, sw, rm) {
			return false
		}
	}
	// Switch-order acyclicity over the whole assignment.
	adj := map[network.SwitchID]map[network.SwitchID]bool{}
	indeg := map[network.SwitchID]int{}
	nodes := map[network.SwitchID]bool{}
	for _, u := range assign {
		nodes[u] = true
	}
	for _, e := range p.Graph.EdgeList() {
		ua, ub := assign[e.From], assign[e.To]
		if ua == ub {
			continue
		}
		if adj[ua] == nil {
			adj[ua] = map[network.SwitchID]bool{}
		}
		if !adj[ua][ub] {
			adj[ua][ub] = true
			indeg[ub]++
		}
	}
	var ready []network.SwitchID
	for u := range nodes {
		if indeg[u] == 0 {
			ready = append(ready, u)
		}
	}
	count := 0
	for len(ready) > 0 {
		u := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		count++
		for v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if count != len(nodes) {
		return false
	}
	// ε1 check on communicating pairs.
	if opts.Epsilon1 > 0 {
		var total time.Duration
		seen := map[RouteKey]bool{}
		for _, e := range p.Graph.EdgeList() {
			ua, ub := assign[e.From], assign[e.To]
			if ua == ub {
				continue
			}
			key := RouteKey{From: ua, To: ub}
			if seen[key] {
				continue
			}
			seen[key] = true
			sp, err := p.Topo.ShortestPath(ua, ub)
			if err != nil {
				return false
			}
			total += sp.Latency
		}
		if total > opts.Epsilon1 {
			return false
		}
	}
	return true
}
