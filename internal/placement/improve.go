package placement

import (
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
)

// localImprove runs a bounded first-improvement hill climb over the
// greedy plan: it tries moving each MAT to another occupied switch and
// keeps the move when it strictly reduces (A_max, total cross bytes)
// while preserving every constraint (stage packing, switch-order
// acyclicity, ε bounds). The paper's Algorithm 2 stops at the segment
// placement; this refinement is an extension that narrows the
// heuristic's gap to the optimum at negligible cost, since contiguous
// topological segmentation cannot express every good partition.
//
// The climb runs entirely on the compiled instance: assignments are
// dense []int32, the pair-byte table is a flat matrix, and candidate
// moves are scored allocation-free in O(deg + pairs) against a
// caller-owned delta overlay (CompiledInstance.MoveScore) instead of
// an O(E) rescan over string-keyed maps. The score phase for one MAT's
// candidate switches fans out across opts.Workers goroutines. A
// candidate's score describes the absolute state "MAT on that switch,
// everything else fixed", so it is independent of both evaluation
// order and any acceptance made earlier in the same candidate loop;
// the serial acceptance walk that follows therefore reproduces the
// sequential first-improvement result exactly for every worker count.
func localImprove(p *Plan, opts Options, rm program.ResourceModel, deadline time.Time) error {
	return localImproveFiltered(p, opts, rm, deadline, nil)
}

// localImproveFiltered is localImprove restricted to the named MATs
// when only is non-nil: the delta-repair pass of Replan polishes just
// the dirty set this way, leaving the untouched region's assignments
// (and their pair bytes) as fixed context. The deadline is polled
// through a counter-gated clock read, not per MAT.
func localImproveFiltered(p *Plan, opts Options, rm program.ResourceModel, deadline time.Time, only map[string]bool) error {
	ci := Compile(p.Graph, p.Topo, rm)
	st := newImproveState(ci, p)
	used := st.usedSwitches()
	bestA, bestCross := st.pt.Max(), st.total
	workers := opts.workers()
	poll := newDeadlinePoller(deadline, 32).withCancel(opts.done())

	type candScore struct {
		a, cross int
		valid    bool
	}
	scores := make([]candScore, len(used))
	// One scratch delta overlay per scoring goroutine.
	scratches := make([]*MoveScratch, workers)
	for i := range scratches {
		scratches[i] = ci.NewMoveScratch()
	}
	feas := newFeasScratch(ci)

	const maxPasses = 4
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for xi := range ci.Names {
			if only != nil && !only[ci.Names[xi]] {
				continue
			}
			if poll.Expired() {
				break
			}
			cur := st.assign[xi]
			// Score phase: pure concurrent reads of the shared state.
			parallelForShard(len(used), workers, func(shard, k int) {
				if int32(used[k]) == cur {
					scores[k] = candScore{}
					return
				}
				a, cross := ci.MoveScore(st.assign, st.pt, scratches[shard], int32(xi), int32(used[k]), st.total)
				scores[k] = candScore{a: a, cross: cross, valid: true}
			})
			// Acceptance phase: sequential first-improvement walk in
			// candidate order, identical to the serial algorithm.
			for k, cand := range used {
				sc := scores[k]
				if !sc.valid || int32(cand) == cur {
					continue
				}
				if sc.a > bestA || (sc.a == bestA && sc.cross >= bestCross) {
					continue
				}
				st.assign[xi] = int32(cand)
				if !st.moveFeasible(opts, rm, feas, network.SwitchID(cur), cand) {
					st.assign[xi] = cur
					continue
				}
				// Restore, then commit through the pair-table fold.
				st.assign[xi] = cur
				st.total = ci.ApplyMove(st.assign, st.pt, int32(xi), int32(cand), st.total)
				bestA, bestCross = sc.a, sc.cross
				cur = int32(cand)
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	// Weighted refinement (DESIGN.md §13): with a traffic matrix set,
	// a second climb descends the weighted objective starting from the
	// structural optimum the passes above converged to. The structural
	// A_max acts as a hard cap at amaxSlack × that optimum, so the
	// refined plan's worst pair stays within the slack of the plan an
	// unweighted solve would ship — the ≤1.2× inflation bound holds by
	// construction. Same shape as the structural climb: parallel
	// absolute scoring, serial first-improvement acceptance on the
	// lexicographic (W, A_max, cross) key, deterministic for every
	// worker count.
	if opts.Traffic != nil {
		wt, err := ci.CompileWeights(opts.Traffic)
		if err != nil {
			return err
		}
		acap := opts.amaxCap(bestA)
		curSum, curMax := wt.Score(st.pt)
		bestW := opts.TrafficObjective.pick(curSum, curMax)
		type wScore struct {
			sum, max int64
			a, cross int
			valid    bool
		}
		wscores := make([]wScore, len(used))
		for pass := 0; pass < maxPasses; pass++ {
			improved := false
			for xi := range ci.Names {
				if only != nil && !only[ci.Names[xi]] {
					continue
				}
				if poll.Expired() {
					break
				}
				cur := st.assign[xi]
				parallelForShard(len(used), workers, func(shard, k int) {
					if int32(used[k]) == cur {
						wscores[k] = wScore{}
						return
					}
					a, cross := ci.MoveScore(st.assign, st.pt, scratches[shard], int32(xi), int32(used[k]), st.total)
					ws, wm := ci.MoveScoreWeighted(st.assign, st.pt, scratches[shard], wt, int32(xi), int32(used[k]), curSum)
					wscores[k] = wScore{sum: ws, max: wm, a: a, cross: cross, valid: true}
				})
				for k, cand := range used {
					sc := wscores[k]
					if !sc.valid || int32(cand) == cur || sc.a > acap {
						continue
					}
					w := opts.TrafficObjective.pick(sc.sum, sc.max)
					if w > bestW ||
						(w == bestW && (sc.a > bestA || (sc.a == bestA && sc.cross >= bestCross))) {
						continue
					}
					st.assign[xi] = int32(cand)
					if !st.moveFeasible(opts, rm, feas, network.SwitchID(cur), cand) {
						st.assign[xi] = cur
						continue
					}
					st.assign[xi] = cur
					st.total = ci.ApplyMove(st.assign, st.pt, int32(xi), int32(cand), st.total)
					bestW, curSum = w, sc.sum
					bestA, bestCross = sc.a, sc.cross
					cur = int32(cand)
					improved = true
				}
			}
			if !improved {
				break
			}
		}
	}

	// Rebuild the plan from the (possibly) improved assignment.
	rebuilt, err := materializeAssignment(p.Graph, p.Topo, ci.AssignMap(st.assign), rm)
	if err != nil {
		return err
	}
	p.Assignments = rebuilt.Assignments
	p.Routes = rebuilt.Routes
	p.InvalidateCache()
	return nil
}

// improveState is the hill climb's working state over the compiled
// instance: the dense assignment, the flat pair-byte table, and the
// running total of cross bytes.
type improveState struct {
	ci     *CompiledInstance
	assign []int32
	pt     *PairTable
	total  int
}

func newImproveState(ci *CompiledInstance, p *Plan) *improveState {
	st := &improveState{ci: ci, assign: ci.PlanAssign(p), pt: ci.NewPairTable()}
	st.total = ci.FillPairTable(st.assign, st.pt)
	return st
}

// usedSwitches lists the switches hosting at least one MAT, ascending.
func (st *improveState) usedSwitches() []network.SwitchID {
	seen := make([]bool, st.ci.S)
	for _, u := range st.assign {
		if u >= 0 {
			seen[u] = true
		}
	}
	out := make([]network.SwitchID, 0, len(seen))
	for u, ok := range seen {
		if ok {
			out = append(out, network.SwitchID(u))
		}
	}
	return out
}

// feasScratch bundles the reusable buffers of the per-move feasibility
// probe.
type feasScratch struct {
	cyc   *CycleScratch
	seen  *MoveScratch
	names []string
}

func newFeasScratch(ci *CompiledInstance) *feasScratch {
	return &feasScratch{cyc: ci.NewCycleScratch(), seen: ci.NewMoveScratch()}
}

// moveFeasible validates the dense assignment after a move that
// touched the given switches: each must still pack, and the contracted
// switch graph must stay acyclic (with ε1 respected when set). Stage
// packing still crosses the map boundary — PackStages canonicalizes
// and memoizes on the graph — while the acyclicity and ε1 probes run
// on the compiled allocation-free kernels.
func (st *improveState) moveFeasible(opts Options, rm program.ResourceModel, fs *feasScratch, touched ...network.SwitchID) bool {
	for _, u := range touched {
		fs.names = fs.names[:0]
		for x, su := range st.assign {
			if su == int32(u) {
				fs.names = append(fs.names, st.ci.Names[x])
			}
		}
		if len(fs.names) == 0 {
			continue
		}
		sw, err := st.ci.Topo.Switch(u)
		if err != nil {
			return false
		}
		if !FitsSwitch(st.ci.Graph, fs.names, sw, rm) {
			return false
		}
	}
	if !st.ci.AssignmentAcyclic(st.assign, fs.cyc) {
		return false
	}
	if opts.Epsilon1 > 0 {
		total, ok := st.ci.AssignmentLatency(st.assign, fs.seen)
		if !ok || total > opts.Epsilon1 {
			return false
		}
	}
	return true
}
