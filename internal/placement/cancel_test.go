package placement

import (
	"context"
	"errors"
	"testing"
)

// TestCanceledContextAbortsSolvers: an already-canceled context must
// make every solver (and the replan engine) fail promptly with the
// context's error instead of burning its deadline.
func TestCanceledContextAbortsSolvers(t *testing.T) {
	g, tp := figure1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Ctx: ctx}

	for _, s := range []Solver{Greedy{}, Exact{}, ILP{}} {
		if _, err := s.Solve(g, tp, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with canceled ctx = %v, want context.Canceled", s.Name(), err)
		}
	}

	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ReplanWithOptions(plan, Greedy{},
		ReplanOptions{Options: opts}, plan.UsedSwitches()[0])
	if !errors.Is(err, context.Canceled) {
		t.Errorf("replan with canceled ctx = %v, want context.Canceled", err)
	}
}

// TestContextNilIsUncancelable: the zero Options must keep working —
// a nil Ctx never cancels.
func TestContextNilIsUncancelable(t *testing.T) {
	g, tp := figure1(t)
	if _, err := (Greedy{}).Solve(g, tp, Options{}); err != nil {
		t.Fatalf("nil ctx solve failed: %v", err)
	}
}

// TestCancelMidReplan: a context canceled before the repair pass runs
// must abort the counter-gated repair loop.
func TestCancelMidReplan(t *testing.T) {
	g, tp := figure1(t)
	plan, err := (Greedy{}).Solve(g, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	drained := plan.UsedSwitches()[0]
	cancel()
	_, _, err = ReplanWithOptions(plan, Greedy{},
		ReplanOptions{Options: Options{Ctx: ctx}, Mode: ReplanIncremental}, drained)
	if err == nil {
		t.Fatal("canceled incremental replan succeeded")
	}
}
