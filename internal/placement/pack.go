package placement

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// packMemoEntry is a cached PackStages outcome, stored in the graph's
// derived-result memo. The map and its PerStage slices are shared
// read-only; PackStages hands callers a fresh top-level map so the
// cached copy cannot be grown or overwritten.
type packMemoEntry struct {
	out map[string]StagePlacement
	err error
}

// packKey canonically identifies a packing instance: the topo-ordered
// MAT set, the switch's shape (ID, stages, per-stage capacity), and the
// resource model. The graph's structure and MAT requirements are
// captured by the memo's host graph, which drops the memo on mutation.
func packKey(ordered []string, sw *network.Switch, rm program.ResourceModel) string {
	var b strings.Builder
	n := 64
	for _, s := range ordered {
		n += len(s) + 1
	}
	b.Grow(n)
	for _, n := range ordered {
		b.WriteString(n)
		b.WriteByte(0x1f)
	}
	b.WriteString(strconv.Itoa(int(sw.ID)))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(sw.Stages))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(sw.StageCapacity, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(rm.SRAMBytesPerStage))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(rm.TCAMFactor, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(rm.ALUWeight, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(rm.MinCost, 'g', -1, 64))
	return b.String()
}

// PackStages places the named MATs onto the pipeline stages of a single
// switch. MATs are processed in topological order of the induced
// subgraph; each MAT starts no earlier than one stage past the last
// stage of any same-switch predecessor (Eq. 8, enforced for every
// dependency type, matching the paper), and its requirement R(a) is
// spread over stages without exceeding the per-stage capacity (Eq. 9).
// A MAT may span non-consecutive stages when intermediate stages are
// full; ρ_begin/ρ_end bracket the span.
//
// It returns the per-MAT placements, or an error when the switch cannot
// host the set.
func PackStages(g *tdg.Graph, names []string, sw *network.Switch, rm program.ResourceModel) (map[string]StagePlacement, error) {
	out, err := packShared(g, names, sw, rm)
	if err != nil {
		return nil, err
	}
	fresh := make(map[string]StagePlacement, len(out))
	for n, sp := range out {
		fresh[n] = sp
	}
	return fresh, nil
}

// packShared is PackStages without the defensive top-level copy: the
// returned map aliases the memo entry and must be treated as read-only
// (the StagePlacement values and their PerStage slices are shared
// exactly as PackStages shares them). Internal callers that only read
// the result — FitsSwitch, candidate evaluation, materialization — use
// this path to keep the memo hit allocation-free.
func packShared(g *tdg.Graph, names []string, sw *network.Switch, rm program.ResourceModel) (map[string]StagePlacement, error) {
	if sw == nil {
		return nil, fmt.Errorf("placement: pack on nil switch")
	}
	if !sw.Programmable {
		return nil, fmt.Errorf("placement: switch %q is not programmable", sw.Name)
	}
	// Canonicalize the packing order: a subset of the parent's cached
	// topological order is a topological order of the induced subgraph,
	// so no subgraph needs to be built (this function dominates solver
	// profiles otherwise).
	pos, err := g.TopoIndex()
	if err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}
	ordered := append([]string(nil), names...)
	for _, n := range ordered {
		if _, ok := g.Node(n); !ok {
			return nil, fmt.Errorf("placement: pack of unknown MAT %q", n)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return pos[ordered[i]] < pos[ordered[j]] })

	// Candidate evaluation re-packs the same (MAT set, switch) pairs
	// constantly during local search and capacity splitting; memoize the
	// outcome on the graph (cleared whenever the graph mutates).
	key := packKey(ordered, sw, rm)
	if v, ok := g.Memo(key); ok {
		ent := v.(packMemoEntry)
		return ent.out, ent.err
	}
	out, err := packOrdered(g, ordered, sw, rm)
	g.MemoSet(key, packMemoEntry{out: out, err: err})
	return out, err
}

// packOrdered is the uncached packing pass over an already
// topo-ordered MAT list.
func packOrdered(g *tdg.Graph, ordered []string, sw *network.Switch, rm program.ResourceModel) (map[string]StagePlacement, error) {
	used := make([]float64, sw.Stages)
	out := make(map[string]StagePlacement, len(ordered))
	const tol = 1e-9

	for _, name := range ordered {
		node, _ := g.Node(name)
		req := rm.Requirement(node.MAT)
		earliest := 0
		for _, e := range g.InEdgeList(name) {
			if pred, ok := out[e.From]; ok && pred.End+1 > earliest {
				earliest = pred.End + 1
			}
		}
		if earliest >= sw.Stages {
			return nil, fmt.Errorf("placement: MAT %q needs stage >= %d but switch %q has %d stages",
				name, earliest, sw.Name, sw.Stages)
		}
		// Spread req across stages from earliest on.
		var perStage []float64
		start, end := -1, -1
		rem := req
		for s := earliest; s < sw.Stages && rem > tol; s++ {
			avail := sw.StageCapacity - used[s]
			if avail <= tol {
				if start >= 0 {
					perStage = append(perStage, 0)
				}
				continue
			}
			chunk := avail
			if rem < chunk {
				chunk = rem
			}
			if start < 0 {
				start = s
			}
			end = s
			perStage = append(perStage, chunk)
			used[s] += chunk
			rem -= chunk
		}
		if rem > tol {
			return nil, fmt.Errorf("placement: MAT %q (R=%g) does not fit on switch %q from stage %d",
				name, req, sw.Name, earliest)
		}
		// Trim trailing zero padding (from skipped-full stages after the
		// last chunk).
		perStage = perStage[:end-start+1]
		out[name] = StagePlacement{Switch: sw.ID, Start: start, End: end, PerStage: perStage}
	}
	return out, nil
}

// FitsSwitch reports whether the named MATs can be packed on the switch
// (a full packing attempt, not just the capacity sum of Alg. 2 line 2).
func FitsSwitch(g *tdg.Graph, names []string, sw *network.Switch, rm program.ResourceModel) bool {
	_, err := packShared(g, names, sw, rm)
	return err == nil
}

// CapacityFits is the cheap test of Alg. 2 line 2: ΣR(a) ≤ C_stage·C_res.
func CapacityFits(g *tdg.Graph, rm program.ResourceModel, sw *network.Switch) bool {
	return g.TotalRequirement(rm) <= sw.Capacity()+1e-9
}

// packScratch is the dense counterpart of PackStages for contiguous
// ranges of one fixed topological order against one fixed switch. The
// capacity-split DP probes O(n²) such ranges per solve; going through
// the name-keyed memo costs a key build, a sort, and a map probe per
// range even on a hit, which dominates solver profiles. The scratch
// precomputes requirements and predecessor positions once and answers
// each range with the exact packOrdered arithmetic over flat arrays,
// so fits(j, i) and FitsSwitch(g, order[j:i], sw, rm) always agree
// (compile_test.go holds them differential).
type packScratch struct {
	stages int
	cap    float64
	req    []float64 // requirement per topo position
	preds  [][]int32 // in-edge predecessor positions per topo position
	end    []int32   // scratch: last stage used, per packed position
	used   []float64 // scratch: per-stage occupancy
}

// newPackScratch compiles the fit instance for g's full topological
// order on switch sw. The order must be g.TopoSort() output.
func newPackScratch(g *tdg.Graph, order []string, sw *network.Switch, rm program.ResourceModel) *packScratch {
	n := len(order)
	pos := make(map[string]int32, n)
	for i, name := range order {
		pos[name] = int32(i)
	}
	ps := &packScratch{
		stages: sw.Stages,
		cap:    sw.StageCapacity,
		req:    make([]float64, n),
		preds:  make([][]int32, n),
		end:    make([]int32, n),
		used:   make([]float64, sw.Stages),
	}
	if !sw.Programmable {
		ps.stages = -1 // every fits() call fails, like PackStages
	}
	for i, name := range order {
		node, _ := g.Node(name)
		ps.req[i] = rm.Requirement(node.MAT)
		for from := range g.InEdgeList(name) {
			ps.preds[i] = append(ps.preds[i], pos[from])
		}
	}
	return ps
}

// fits reports whether order[j:i] packs onto the switch — the same
// verdict as FitsSwitch on that range, without names, keys, or maps.
// A contiguous slice of a topological order is already in PackStages'
// canonical order, so the packing arithmetic below is a literal port
// of packOrdered over positions.
func (ps *packScratch) fits(j, i int) bool {
	if ps.stages < 0 {
		return false
	}
	const tol = 1e-9
	used := ps.used
	for s := range used {
		used[s] = 0
	}
	//hermes:hot
	for k := j; k < i; k++ {
		earliest := 0
		for _, p := range ps.preds[k] {
			// Predecessors precede k in topo order, so p < k always;
			// p is in the packed set exactly when j <= p.
			if int(p) >= j && int(ps.end[p])+1 > earliest {
				earliest = int(ps.end[p]) + 1
			}
		}
		if earliest >= ps.stages {
			return false
		}
		rem := ps.req[k]
		end := -1
		for s := earliest; s < ps.stages && rem > tol; s++ {
			avail := ps.cap - used[s]
			if avail <= tol {
				continue
			}
			chunk := avail
			if rem < chunk {
				chunk = rem
			}
			end = s
			used[s] += chunk
			rem -= chunk
		}
		if rem > tol {
			return false
		}
		ps.end[k] = int32(end)
	}
	return true
}
