package placement

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// Options carries the ε-constraint bounds and solver knobs shared by
// every deployment solver (Hermes and the baselines).
type Options struct {
	// Epsilon1 bounds t_e2e (Eq. 4); zero means unbounded (the paper's
	// evaluation relaxes it).
	Epsilon1 time.Duration
	// Epsilon2 bounds Q_occ (Eq. 5); zero means unbounded.
	Epsilon2 int
	// Deadline caps solver runtime; zero means none. ILP-based solvers
	// return their best incumbent at the deadline, mirroring the
	// paper's two-hour Gurobi cap.
	Deadline time.Time
	// Resources is the MAT resource model; zero value means
	// program.DefaultResourceModel.
	Resources *program.ResourceModel
	// Workers bounds solver-internal parallelism (anchor candidate
	// evaluation, local-search move scoring, exact-search branch
	// exploration). Zero or negative means GOMAXPROCS. Every worker
	// count produces the same Plan.
	Workers int
	// Lint, when true, runs the registered PlanLintHook over every
	// solver's final plan and fails the solve on error-severity
	// findings. The internal/lint package registers the hook; with no
	// hook registered the flag is a no-op.
	Lint bool
	// Equiv, when true, runs the registered PlanEquivHook over every
	// solver's final plan: a symbolic proof that the plan's distributed
	// pipeline is equivalent to the single-box reference, rejecting the
	// solve otherwise. The internal/equiv package registers the hook;
	// with no hook registered the flag is a no-op.
	Equiv bool
	// Ctx, when non-nil, allows canceling a solve in flight: the hot
	// loops (local improve, the exact branch search, the MILP branch
	// and bound, the replan repair) poll Ctx.Done() at the same
	// counter-gated cadence as Deadline and abandon the solve with
	// Ctx.Err(). The supervisor uses this to abort a superseded replan
	// when a newer fault arrives. nil means not cancelable.
	Ctx context.Context
	// Shards requests region-sharded solving: when > 1, the facade (and
	// any solver that honors it, i.e. shard.ShardedGreedy) partitions
	// the topology into this many regions, solves them concurrently, and
	// reconciles the boundaries. Solvers without a sharded mode ignore
	// it. Zero means whole-graph solving.
	Shards int
	// Traffic, when non-nil, switches the solvers to the traffic-
	// weighted objective: minimize Σ w(u,v)·A(u,v) (or the weighted-max
	// variant, per TrafficObjective) where w is the matrix's pair-rate
	// projection, instead of the structural A_max of Eq. 1. The ε
	// constraints are unchanged, and the structural A_max is still
	// bounded at AMaxSlack × the solve's own structural optimum, so a
	// weighted plan never trades unbounded worst-pair bytes for
	// byte-rate. nil means the structural objective.
	Traffic *network.TrafficMatrix
	// TrafficObjective selects the weighted aggregate when Traffic is
	// set; the zero value is TrafficWeightedSum.
	TrafficObjective TrafficObjective
	// AMaxSlack caps the structural A_max inflation a weighted solve
	// may accept, as a ratio of the structural optimum the same solve
	// reaches before weighted refinement. Zero means the default 1.2;
	// values < 1 are treated as 1 (no inflation allowed). Ignored when
	// Traffic is nil.
	AMaxSlack float64
	// Warm seeds the solve with an existing plan over the same TDG.
	// Greedy reuses the warm assignment outright (skipping segmentation)
	// and only polishes it; Exact adopts it as the initial
	// branch-and-bound incumbent, so a warm-started "Optimal" can never
	// report a plan worse than its seed. A warm plan that is infeasible
	// on the solve's topology (drained switches, changed capacities,
	// different MAT set) is ignored and the solver runs cold.
	Warm *Plan
}

// PlanLintHook is the static diagnostics hook solvers invoke on their
// final plan when Options.Lint is set. internal/lint registers its
// independent Eq. 4–9 re-implementation here; keeping the hook a
// variable avoids an import cycle (lint depends on placement).
var PlanLintHook func(*Plan, Options) error

// PlanEquivHook is the symbolic equivalence gate solvers invoke on
// their final plan when Options.Equiv is set. internal/equiv registers
// its checker here; like PlanLintHook, the variable indirection avoids
// an import cycle (equiv depends on placement).
var PlanEquivHook func(*Plan, Options) error

// finishPlan applies the lint and equivalence hooks (when enabled)
// before a solver returns its plan.
func finishPlan(p *Plan, opts Options) (*Plan, error) {
	if opts.Lint && PlanLintHook != nil {
		if err := PlanLintHook(p, opts); err != nil {
			return nil, fmt.Errorf("placement: %s plan rejected by lint: %w", p.SolverName, err)
		}
	}
	if opts.Equiv && PlanEquivHook != nil {
		if err := PlanEquivHook(p, opts); err != nil {
			return nil, fmt.Errorf("placement: %s plan rejected by equivalence check: %w", p.SolverName, err)
		}
	}
	return p, nil
}

// resourceModel resolves the effective model.
func (o Options) resourceModel() program.ResourceModel {
	if o.Resources != nil {
		return *o.Resources
	}
	return program.DefaultResourceModel
}

// done returns the cancellation channel, or nil (never ready) when the
// solve is not cancelable. A nil channel is safe in a select with a
// default branch.
func (o Options) done() <-chan struct{} {
	if o.Ctx != nil {
		return o.Ctx.Done()
	}
	return nil
}

// canceled returns the context's error when the solve has been
// canceled, nil otherwise.
func (o Options) canceled() error {
	if o.Ctx != nil {
		return o.Ctx.Err()
	}
	return nil
}

// amaxSlack resolves the effective structural-inflation cap.
func (o Options) amaxSlack() float64 {
	if o.AMaxSlack == 0 {
		return 1.2
	}
	if o.AMaxSlack < 1 {
		return 1
	}
	return o.AMaxSlack
}

// amaxCap converts a structural baseline into the absolute cap.
func (o Options) amaxCap(baseA int) int {
	return int(math.Ceil(o.amaxSlack() * float64(baseA)))
}

// workers resolves the effective parallelism width.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// epsilon2 resolves the effective occupied-switch bound given the
// number of programmable switches available.
func (o Options) epsilon2(available int) int {
	if o.Epsilon2 <= 0 || o.Epsilon2 > available {
		return available
	}
	return o.Epsilon2
}

// Solver deploys a merged TDG onto a network.
type Solver interface {
	// Name identifies the solver in reports ("Hermes", "FFL", ...).
	Name() string
	// Solve produces a deployment plan or an error when the instance
	// cannot be deployed within the constraints.
	Solve(g *tdg.Graph, topo *network.Topology, opts Options) (*Plan, error)
}

// MaterializeAssignment packs a complete MAT→switch assignment into a
// Plan: per-switch stage packing plus shortest-path routes for every
// communicating pair. It fails when some switch cannot pack its MATs.
// The region-sharded solver finalizes its merged assignment through
// this; it is the exported face of the warm-start/ILP materializer.
func MaterializeAssignment(g *tdg.Graph, topo *network.Topology, assign map[string]network.SwitchID, rm program.ResourceModel) (*Plan, error) {
	return materializeAssignment(g, topo, assign, rm)
}

// AddRoutes fills in shortest-path routes for every communicating
// switch pair of the plan's assignment; solvers (including baselines)
// call it after fixing MAT placements.
func AddRoutes(p *Plan) error {
	return addRoutesForCrossPairs(p)
}

// addRoutesForCrossPairs fills in shortest-path routes for every
// communicating switch pair of the assignment, batching the queries
// through the topology's path oracle.
func addRoutesForCrossPairs(p *Plan) error {
	bytes := p.PairBytes()
	keys := make([]RouteKey, 0, len(bytes))
	pairs := make([][2]network.SwitchID, 0, len(bytes))
	for key := range bytes {
		keys = append(keys, key)
		pairs = append(pairs, [2]network.SwitchID{key.From, key.To})
	}
	paths, err := p.Topo.ShortestPaths(pairs)
	if err != nil {
		return err
	}
	p.Routes = make(map[RouteKey]network.Path, len(keys))
	for i, key := range keys {
		p.Routes[key] = paths[i]
	}
	return nil
}
