package placement

import (
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// Options carries the ε-constraint bounds and solver knobs shared by
// every deployment solver (Hermes and the baselines).
type Options struct {
	// Epsilon1 bounds t_e2e (Eq. 4); zero means unbounded (the paper's
	// evaluation relaxes it).
	Epsilon1 time.Duration
	// Epsilon2 bounds Q_occ (Eq. 5); zero means unbounded.
	Epsilon2 int
	// Deadline caps solver runtime; zero means none. ILP-based solvers
	// return their best incumbent at the deadline, mirroring the
	// paper's two-hour Gurobi cap.
	Deadline time.Time
	// Resources is the MAT resource model; zero value means
	// program.DefaultResourceModel.
	Resources *program.ResourceModel
}

// resourceModel resolves the effective model.
func (o Options) resourceModel() program.ResourceModel {
	if o.Resources != nil {
		return *o.Resources
	}
	return program.DefaultResourceModel
}

// epsilon2 resolves the effective occupied-switch bound given the
// number of programmable switches available.
func (o Options) epsilon2(available int) int {
	if o.Epsilon2 <= 0 || o.Epsilon2 > available {
		return available
	}
	return o.Epsilon2
}

// Solver deploys a merged TDG onto a network.
type Solver interface {
	// Name identifies the solver in reports ("Hermes", "FFL", ...).
	Name() string
	// Solve produces a deployment plan or an error when the instance
	// cannot be deployed within the constraints.
	Solve(g *tdg.Graph, topo *network.Topology, opts Options) (*Plan, error)
}

// AddRoutes fills in shortest-path routes for every communicating
// switch pair of the plan's assignment; solvers (including baselines)
// call it after fixing MAT placements.
func AddRoutes(p *Plan) error {
	return addRoutesForCrossPairs(p)
}

// addRoutesForCrossPairs fills in shortest-path routes for every
// communicating switch pair of the assignment.
func addRoutesForCrossPairs(p *Plan) error {
	p.Routes = map[RouteKey]network.Path{}
	for key := range p.PairBytes() {
		path, err := p.Topo.ShortestPath(key.From, key.To)
		if err != nil {
			return err
		}
		p.Routes[key] = path
	}
	return nil
}
