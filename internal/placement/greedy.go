package placement

import (
	"fmt"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// Greedy implements the paper's Algorithm 2: recursively split the
// merged TDG at minimum-metadata cuts until every segment fits a single
// switch, then deploy the segment chain onto the candidate switch set
// around some programmable switch, connecting consecutive switches by
// shortest paths.
//
// Three refinements extend the published algorithm; each can be
// disabled for ablation studies (see the Ablation* benchmarks):
// coalescing of adjacent under-full segments, the DP capacity split
// fallback when bisection over-fragments, and a bounded local-search
// polish of the final assignment.
type Greedy struct {
	// DisableCoalesce skips merging adjacent under-full segments.
	DisableCoalesce bool
	// DisableDPSplit skips the minimum-segment-count DP fallback.
	DisableDPSplit bool
	// DisableImprove skips the local-search polish.
	DisableImprove bool
	// ImproveBudget caps the local search wall clock. The zero value
	// means the 2s default; the cap always applies, and when
	// Options.Deadline is also set the local search stops at whichever
	// comes first.
	ImproveBudget time.Duration
}

var _ Solver = (*Greedy)(nil)

// Name implements Solver.
func (Greedy) Name() string { return "Hermes" }

// Solve implements Solver.
func (gr Greedy) Solve(g *tdg.Graph, topo *network.Topology, opts Options) (*Plan, error) {
	start := time.Now()
	if err := opts.canceled(); err != nil {
		return nil, fmt.Errorf("placement: solve canceled: %w", err)
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("placement: empty TDG")
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}
	rm := opts.resourceModel()
	prog := topo.ProgrammableSwitches()
	if len(prog) == 0 {
		return nil, fmt.Errorf("placement: no programmable switches")
	}

	// Warm path: a feasible seed plan replaces segmentation and anchor
	// search entirely — the assignment is adopted as-is (fresh packing
	// and routes on this topology) and only the local-search polish
	// runs. An infeasible or absent seed falls through to the cold path.
	if plan, ok := warmStart(g, topo, opts); ok {
		if err := gr.polish(plan, opts, rm); err != nil {
			return nil, err
		}
		plan.SolverName = gr.Name()
		plan.SolveTime = time.Since(start)
		return finishPlan(plan, opts)
	}

	refSwitch, err := topo.Switch(prog[0])
	if err != nil {
		return nil, err
	}

	// Alg. 2 line 20: split T_m into segments that fit one switch.
	segments, err := SplitTDG(g, refSwitch, rm)
	if err != nil {
		return nil, err
	}
	// Bisection can overshoot the minimum segment count; coalesce
	// adjacent segments while the pair still fits one switch. Merging
	// adjacent segments only ever removes cross-switch bytes, so this
	// strictly improves the objective.
	if !gr.DisableCoalesce {
		segments, err = coalesceSegments(g, segments, refSwitch, rm)
		if err != nil {
			return nil, err
		}
	}

	// Candidate segmentations, tried in order: the min-cut bisection
	// (byte-optimal), then — if it needs too many switches — the DP
	// capacity split, which provably uses the minimum number of
	// contiguous segments while still preferring low-byte cut points.
	candidates := [][]*tdg.Graph{segments}
	if !gr.DisableDPSplit {
		if dpSegs, derr := capacitySplit(g, refSwitch, rm); derr == nil && len(dpSegs) < len(segments) {
			candidates = append(candidates, dpSegs)
		}
	}

	var lastErr error
	for _, segs := range candidates {
		plan, err := placeWithRefinement(g, topo, segs, opts, rm)
		if err == nil {
			if perr := gr.polish(plan, opts, rm); perr != nil {
				return nil, perr
			}
			plan.SolverName = gr.Name()
			plan.SolveTime = time.Since(start)
			return finishPlan(plan, opts)
		}
		lastErr = err
	}
	return nil, lastErr
}

// polish runs the bounded local-search refinement over single-MAT
// moves. The improve budget (default 2s) always caps the search; a
// tighter Options.Deadline wins when set.
func (gr Greedy) polish(plan *Plan, opts Options, rm program.ResourceModel) error {
	if gr.DisableImprove {
		return nil
	}
	budget := gr.ImproveBudget
	if budget <= 0 {
		budget = 2 * time.Second
	}
	deadline := time.Now().Add(budget)
	if !opts.Deadline.IsZero() && opts.Deadline.Before(deadline) {
		deadline = opts.Deadline
	}
	return localImprove(plan, opts, rm, deadline)
}

// placeWithRefinement runs the placement loop, splitting segments that
// pass the capacity test but fail stage-level packing.
func placeWithRefinement(g *tdg.Graph, topo *network.Topology, segments []*tdg.Graph, opts Options, rm program.ResourceModel) (*Plan, error) {
	const maxRefinements = 64
	for attempt := 0; attempt < maxRefinements; attempt++ {
		plan, splitIdx, err := placeSegments(g, topo, segments, opts, rm)
		if err == nil {
			return plan, nil
		}
		if splitIdx < 0 {
			return nil, err
		}
		// Packing rejected segment splitIdx: split it once and retry.
		seg := segments[splitIdx]
		if seg.NumNodes() <= 1 {
			return nil, fmt.Errorf("placement: MAT set unplaceable: %w", err)
		}
		left, right, serr := splitOnce(seg, rm)
		if serr != nil {
			return nil, fmt.Errorf("placement: refining segment: %w (after %v)", serr, err)
		}
		segments = append(segments[:splitIdx],
			append([]*tdg.Graph{left, right}, segments[splitIdx+1:]...)...)
	}
	return nil, fmt.Errorf("placement: segment refinement did not converge")
}

// capacitySplit partitions the topological order into the minimum
// number of contiguous capacity-feasible segments by dynamic
// programming, breaking ties toward the smallest total boundary-cut
// bytes.
func capacitySplit(g *tdg.Graph, sw *network.Switch, rm program.ResourceModel) ([]*tdg.Graph, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	n := len(order)
	cap := sw.Capacity()
	req := make([]float64, n)
	for i, name := range order {
		node, _ := g.Node(name)
		req[i] = rm.Requirement(node.MAT)
		if req[i] > cap+1e-9 {
			return nil, fmt.Errorf("placement: MAT %q alone exceeds switch capacity %g", name, cap)
		}
	}
	// cutAt[j] = bytes crossing the boundary between order[:j] and
	// order[j:], computed by the incremental prefix sweep.
	cutAt := make([]int, n+1)
	va := map[string]bool{}
	cut := 0
	for k := 0; k < n; k++ {
		name := order[k]
		for _, e := range g.OutEdges(name) {
			cut += e.MetadataBytes
		}
		for _, e := range g.InEdges(name) {
			if va[e.From] {
				cut -= e.MetadataBytes
			}
		}
		va[name] = true
		cutAt[k+1] = cut
	}

	const inf = int(^uint(0) >> 1)
	type cell struct{ groups, cost int }
	dp := make([]cell, n+1)
	prev := make([]int, n+1)
	for i := 1; i <= n; i++ {
		dp[i] = cell{groups: inf, cost: inf}
		prev[i] = -1
	}
	// The DP probes O(n²) contiguous ranges; the dense scratch answers
	// each with packOrdered's arithmetic, skipping the name-keyed memo.
	ps := newPackScratch(g, order, sw, rm)
	for i := 1; i <= n; i++ {
		weight := 0.0
		for j := i - 1; j >= 0; j-- {
			weight += req[j]
			if weight > cap+1e-9 {
				break
			}
			if dp[j].groups == inf {
				continue
			}
			boundary := 0
			if j > 0 {
				boundary = cutAt[j]
			}
			cand := cell{groups: dp[j].groups + 1, cost: dp[j].cost + boundary}
			// Test the cell improvement before the (expensive) packing
			// attempt: a candidate that cannot improve dp[i] never needs
			// its feasibility decided, and the dp table is unchanged.
			if cand.groups > dp[i].groups || (cand.groups == dp[i].groups && cand.cost >= dp[i].cost) {
				continue
			}
			if !ps.fits(j, i) {
				continue
			}
			dp[i] = cand
			prev[i] = j
		}
	}
	if dp[n].groups == inf {
		return nil, fmt.Errorf("placement: no capacity-feasible contiguous split exists")
	}
	// Reconstruct boundaries.
	var bounds []int
	for at := n; at > 0; at = prev[at] {
		bounds = append(bounds, at)
	}
	// bounds is descending [n, ..., first]; build segments in order.
	var segments []*tdg.Graph
	start := 0
	for i := len(bounds) - 1; i >= 0; i-- {
		end := bounds[i]
		sub, err := g.Subgraph(order[start:end])
		if err != nil {
			return nil, err
		}
		segments = append(segments, sub)
		start = end
	}
	return segments, nil
}

// SplitTDG is Alg. 2's SPLIT_TDG: recursively bisect the TDG at the
// minimum-metadata topological prefix cut until every segment satisfies
// the switch capacity C_stage·C_res. Segments come back in dependency
// order (all TDG edges flow from earlier to later segments).
//
// The recursion runs densely over contiguous ranges of the root
// topological order — subgraphs are materialized only for the final
// segments. This is exact, not an approximation: bisection always cuts
// a topological prefix, the graph's topological sort breaks ties by
// insertion order, and Subgraph inserts nodes in the caller's order,
// so every recursive subgraph's topological order is precisely its
// slice of the root order (an insertion order that is already
// topological is a fixed point of the tie-break).
func SplitTDG(g *tdg.Graph, sw *network.Switch, rm program.ResourceModel) ([]*tdg.Graph, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("placement: splitting empty TDG")
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	sp := newSplitScratch(g, order, sw, rm)
	ranges, err := sp.split(0, len(order))
	if err != nil {
		return nil, err
	}
	segments := make([]*tdg.Graph, 0, len(ranges))
	for _, r := range ranges {
		seg, err := g.Subgraph(order[r[0]:r[1]])
		if err != nil {
			return nil, err
		}
		segments = append(segments, seg)
	}
	return segments, nil
}

// splitScratch carries the dense per-position arrays for SplitTDG's
// range recursion: requirements, in/out edge bytes by position, and
// the stage-packing scratch shared with the capacity-split DP.
type splitScratch struct {
	order []string
	sw    *network.Switch
	req   []float64
	out   [][]posBytes // out-edges by topo position (targets are later)
	in    [][]posBytes // in-edges by topo position (sources are earlier)
	ps    *packScratch
}

type posBytes struct {
	pos   int32
	bytes int32
}

func newSplitScratch(g *tdg.Graph, order []string, sw *network.Switch, rm program.ResourceModel) *splitScratch {
	n := len(order)
	pos := make(map[string]int32, n)
	for i, name := range order {
		pos[name] = int32(i)
	}
	sp := &splitScratch{
		order: order,
		sw:    sw,
		req:   make([]float64, n),
		out:   make([][]posBytes, n),
		in:    make([][]posBytes, n),
	}
	for i, name := range order {
		node, _ := g.Node(name)
		sp.req[i] = rm.Requirement(node.MAT)
		for to, e := range g.OutEdgeList(name) {
			sp.out[i] = append(sp.out[i], posBytes{pos[to], int32(e.MetadataBytes)})
		}
		for from, e := range g.InEdgeList(name) {
			sp.in[i] = append(sp.in[i], posBytes{pos[from], int32(e.MetadataBytes)})
		}
	}
	sp.ps = newPackScratch(g, order, sw, rm)
	return sp
}

// split recursively bisects order[lo:hi] until every range fits one
// switch, returning the ranges in dependency order.
func (sp *splitScratch) split(lo, hi int) ([][2]int, error) {
	// Line 2: the fit test. The paper checks the capacity sum
	// ΣR(a) ≤ C_stage·C_res; we additionally require an actual stage
	// packing so that dependency depth (Eq. 8) cannot invalidate a
	// segment later.
	total := 0.0
	for k := lo; k < hi; k++ {
		total += sp.req[k]
	}
	if total <= sp.sw.Capacity()+1e-9 && sp.ps.fits(lo, hi) {
		return [][2]int{{lo, hi}}, nil
	}
	if hi-lo == 1 {
		return nil, fmt.Errorf("placement: MAT %q alone exceeds switch capacity %g",
			sp.order[lo], sp.sw.Capacity())
	}
	// One greedy bisection (Alg. 2 lines 4-14): sweep topological
	// prefixes of the range, keeping the cut with minimal crossing
	// metadata; ties break toward resource balance exactly as in
	// splitOnce. Edges with an endpoint outside [lo,hi) never cross a
	// cut of the range (they do not exist in the induced subgraph).
	bestCut, bestK := -1, -1
	bestBalance := 0.0
	cut := 0
	leftReq := 0.0
	//hermes:hot
	for k := lo; k < hi-1; k++ {
		for _, e := range sp.out[k] {
			if int(e.pos) < hi {
				cut += int(e.bytes)
			}
		}
		for _, e := range sp.in[k] {
			if int(e.pos) >= lo {
				cut -= int(e.bytes)
			}
		}
		leftReq += sp.req[k]
		imbalance := leftReq - total/2
		if imbalance < 0 {
			imbalance = -imbalance
		}
		if bestCut < 0 || cut < bestCut || (cut == bestCut && imbalance < bestBalance) {
			bestCut = cut
			bestK = k
			bestBalance = imbalance
		}
	}
	ls, err := sp.split(lo, bestK+1)
	if err != nil {
		return nil, err
	}
	rs, err := sp.split(bestK+1, hi)
	if err != nil {
		return nil, err
	}
	return append(ls, rs...), nil
}

// splitOnce performs one greedy bisection (Alg. 2 lines 4-14): sweep
// topological prefixes, keeping the prefix whose outgoing metadata is
// minimal. Both sides are guaranteed non-empty.
func splitOnce(g *tdg.Graph, rm program.ResourceModel) (left, right *tdg.Graph, err error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, nil, err
	}
	n := len(order)
	if n < 2 {
		return nil, nil, fmt.Errorf("placement: cannot split %d-node TDG", n)
	}
	va := map[string]bool{}
	bestCut := -1
	bestK := -1
	bestBalance := 0.0
	cut := 0
	total := g.TotalRequirement(rm)
	leftReq := 0.0
	// Move MATs one by one from V_b to V_a, updating the cut
	// incrementally: moving a node adds its out-edges (now crossing)
	// and removes its in-edges from V_a (no longer crossing). Ties on
	// the cut value are broken toward the most resource-balanced
	// bisection, so recursion produces segments that fill switches
	// instead of peeling off single MATs (many cuts are zero when
	// independent programs share a TDG).
	for k := 0; k < n-1; k++ {
		name := order[k]
		for _, e := range g.OutEdges(name) {
			cut += e.MetadataBytes
		}
		for _, e := range g.InEdges(name) {
			if va[e.From] {
				cut -= e.MetadataBytes
			}
		}
		va[name] = true
		node, _ := g.Node(name)
		leftReq += rm.Requirement(node.MAT)
		imbalance := leftReq - total/2
		if imbalance < 0 {
			imbalance = -imbalance
		}
		if bestCut < 0 || cut < bestCut || (cut == bestCut && imbalance < bestBalance) {
			bestCut = cut
			bestK = k
			bestBalance = imbalance
		}
	}
	leftNames := order[:bestK+1]
	rightNames := order[bestK+1:]
	left, err = g.Subgraph(leftNames)
	if err != nil {
		return nil, nil, err
	}
	right, err = g.Subgraph(rightNames)
	if err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

// coalesceSegments greedily merges consecutive segments while the
// combination still satisfies the capacity test, reducing the switch
// count (and the inter-switch bytes) without reordering.
func coalesceSegments(g *tdg.Graph, segments []*tdg.Graph, sw *network.Switch, rm program.ResourceModel) ([]*tdg.Graph, error) {
	if len(segments) <= 1 {
		return segments, nil
	}
	var out []*tdg.Graph
	cur := segments[0]
	curReq := cur.TotalRequirement(rm)
	for _, seg := range segments[1:] {
		req := seg.TotalRequirement(rm)
		if curReq+req <= sw.Capacity()+1e-9 {
			mergedNames := append(cur.NodeNames(), seg.NodeNames()...)
			merged, err := g.Subgraph(mergedNames)
			if err != nil {
				return nil, err
			}
			if FitsSwitch(g, mergedNames, sw, rm) {
				cur = merged
				curReq += req
				continue
			}
		}
		out = append(out, cur)
		cur = seg
		curReq = req
	}
	return append(out, cur), nil
}

// placeSegments tries every programmable switch u as the anchor (Alg. 2
// lines 21-29). On packing failure it reports the index of the
// offending segment so the caller can refine. splitIdx == -1 signals a
// non-recoverable error.
//
// Anchors are evaluated concurrently in waves of opts.Workers: each
// anchor's candidate chain and packing attempt is independent
// (read-only against the shared graph, oracle, and pack memo), and the
// wave results are merged in anchor order — first success wins, and
// the error/splitIdx bookkeeping matches the sequential loop exactly.
// A wave bounds the work wasted past the first successful anchor.
func placeSegments(g *tdg.Graph, topo *network.Topology, segments []*tdg.Graph, opts Options, rm program.ResourceModel) (*Plan, int, error) {
	prog := topo.ProgrammableSwitches()
	eps2 := opts.epsilon2(len(prog))
	if len(segments) > eps2 {
		return nil, -1, fmt.Errorf("placement: %d segments exceed ε2=%d switches", len(segments), eps2)
	}

	type anchorResult struct {
		plan     *Plan
		splitIdx int
		err      error
		// fatal marks errors the sequential loop aborts on immediately
		// (candidate lookup failures) rather than recording and moving
		// to the next anchor.
		fatal bool
	}
	workers := opts.workers()
	wave := workers
	if wave < 1 {
		wave = 1
	}
	results := make([]anchorResult, len(prog))

	var lastErr error
	lastSplit := -1
	for base := 0; base < len(prog); base += wave {
		end := base + wave
		if end > len(prog) {
			end = len(prog)
		}
		parallelFor(end-base, workers, func(off int) {
			i := base + off
			u := prog[i]
			// SELECT_SWITCHES: u plus its ε2-1 nearest programmable
			// neighbors within latency ε1.
			near, err := topo.NearestProgrammable(u, eps2-1, opts.Epsilon1)
			if err != nil {
				results[i] = anchorResult{splitIdx: -1, err: err, fatal: true}
				return
			}
			cands := append([]network.SwitchID{u}, near...)
			if len(segments) > len(cands) {
				results[i] = anchorResult{splitIdx: -1, err: fmt.Errorf(
					"placement: anchor %d offers only %d candidate switches for %d segments",
					u, len(cands), len(segments))}
				return
			}
			plan, splitIdx, err := tryAssign(g, topo, segments, cands, rm)
			results[i] = anchorResult{plan: plan, splitIdx: splitIdx, err: err}
		})
		for i := base; i < end; i++ {
			r := results[i]
			if r.fatal {
				return nil, -1, r.err
			}
			if r.err == nil {
				return r.plan, -1, nil
			}
			lastErr = r.err
			if r.splitIdx >= 0 {
				lastSplit = r.splitIdx
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("placement: no programmable switch anchors the deployment")
	}
	return nil, lastSplit, lastErr
}

// tryAssign maps segment i onto candidate switch i and packs stages.
func tryAssign(g *tdg.Graph, topo *network.Topology, segments []*tdg.Graph, cands []network.SwitchID, rm program.ResourceModel) (*Plan, int, error) {
	plan := &Plan{
		Graph:       g,
		Topo:        topo,
		Assignments: map[string]StagePlacement{},
	}
	for i, seg := range segments {
		sw, err := topo.Switch(cands[i])
		if err != nil {
			return nil, -1, err
		}
		placed, err := packShared(g, seg.NodeNames(), sw, rm)
		if err != nil {
			return nil, i, fmt.Errorf("placement: segment %d on switch %q: %w", i, sw.Name, err)
		}
		for name, sp := range placed {
			plan.Assignments[name] = sp
		}
	}
	if err := addRoutesForCrossPairs(plan); err != nil {
		return nil, -1, err
	}
	return plan, -1, nil
}
