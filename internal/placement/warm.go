package placement

import (
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/tdg"
)

// warmSeed extracts the MAT→switch assignment of a warm plan when it is
// feasible for a solve of g on topo: the warm plan must cover exactly
// the MATs of g, every hosting switch must still be programmable on
// topo with a working stage packing, the contracted switch graph must
// stay acyclic, and the ε bounds of opts must hold. It returns the
// assignment or false when the seed cannot be used (the caller then
// solves cold).
//
// Feasibility is re-derived from scratch against topo rather than
// trusted from the warm plan: the main consumer is Replan, which hands
// solvers a plan computed on a pre-drain topology.
func warmSeed(g *tdg.Graph, topo *network.Topology, opts Options) (map[string]network.SwitchID, bool) {
	warm := opts.Warm
	if warm == nil || warm.Graph == nil || warm.Assignments == nil {
		return nil, false
	}
	if !sameMATSet(g, warm.Graph) {
		return nil, false
	}
	rm := opts.resourceModel()
	assign := make(map[string]network.SwitchID, len(warm.Assignments))
	bySwitch := map[network.SwitchID][]string{}
	for _, name := range g.NodeNames() {
		sp, ok := warm.Assignments[name]
		if !ok {
			return nil, false
		}
		assign[name] = sp.Switch
		bySwitch[sp.Switch] = append(bySwitch[sp.Switch], name)
	}
	if eps2 := opts.epsilon2(len(topo.ProgrammableSwitches())); len(bySwitch) > eps2 {
		return nil, false
	}
	for u, names := range bySwitch {
		sw, err := topo.Switch(u)
		if err != nil || !sw.Programmable || topo.SwitchIsDown(u) {
			return nil, false
		}
		if !FitsSwitch(g, names, sw, rm) {
			return nil, false
		}
	}
	if !assignmentAcyclic(g, assign) {
		return nil, false
	}
	if opts.Epsilon1 > 0 {
		if lat, err := assignmentLatency(g, topo, assign); err != nil || lat > opts.Epsilon1 {
			return nil, false
		}
	}
	return assign, true
}

// sameMATSet reports whether two TDGs describe the same MAT set by
// name. Diff and the warm-start path both need real identity, not just
// equal node counts.
func sameMATSet(a, b *tdg.Graph) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.NumNodes() != b.NumNodes() {
		return false
	}
	for _, name := range a.NodeNames() {
		if _, ok := b.Node(name); !ok {
			return false
		}
	}
	return true
}

// assignmentAMax computes Eq. 1 for a switch-level assignment without
// materializing a plan: the maximum per-ordered-pair cross bytes. MATs
// missing from the assignment are ignored (partial assignments appear
// mid-repair).
func assignmentAMax(g *tdg.Graph, assign map[string]network.SwitchID) int {
	pair := map[RouteKey]int{}
	max := 0
	for _, e := range g.EdgeList() {
		ua, oka := assign[e.From]
		ub, okb := assign[e.To]
		if !oka || !okb || ua == ub {
			continue
		}
		k := RouteKey{From: ua, To: ub}
		pair[k] += e.MetadataBytes
		if pair[k] > max {
			max = pair[k]
		}
	}
	return max
}

// assignmentAcyclic reports whether the contracted switch graph of a
// (possibly partial) assignment is a DAG; unassigned MATs contribute no
// edges.
func assignmentAcyclic(g *tdg.Graph, assign map[string]network.SwitchID) bool {
	adj := map[network.SwitchID]map[network.SwitchID]bool{}
	indeg := map[network.SwitchID]int{}
	nodes := map[network.SwitchID]bool{}
	for _, u := range assign {
		nodes[u] = true
	}
	for _, e := range g.EdgeList() {
		ua, oka := assign[e.From]
		ub, okb := assign[e.To]
		if !oka || !okb || ua == ub {
			continue
		}
		if adj[ua] == nil {
			adj[ua] = map[network.SwitchID]bool{}
		}
		if !adj[ua][ub] {
			adj[ua][ub] = true
			indeg[ub]++
		}
	}
	var ready []network.SwitchID
	for u := range nodes {
		if indeg[u] == 0 {
			ready = append(ready, u)
		}
	}
	count := 0
	for len(ready) > 0 {
		u := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		count++
		for v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	return count == len(nodes)
}

// assignmentLatency sums shortest-path latency over the distinct
// communicating switch pairs of an assignment (Eq. 2 evaluated without
// a materialized plan).
func assignmentLatency(g *tdg.Graph, topo *network.Topology, assign map[string]network.SwitchID) (time.Duration, error) {
	seen := map[RouteKey]bool{}
	var total time.Duration
	for _, e := range g.EdgeList() {
		ua, oka := assign[e.From]
		ub, okb := assign[e.To]
		if !oka || !okb || ua == ub {
			continue
		}
		key := RouteKey{From: ua, To: ub}
		if seen[key] {
			continue
		}
		seen[key] = true
		p, err := topo.ShortestPath(ua, ub)
		if err != nil {
			return 0, err
		}
		total += p.Latency
	}
	return total, nil
}

// deadlinePoller amortizes deadline checks over hot loops: Expired
// reads the clock only once every interval calls (satisfying the
// "counter-gated" requirement — time.Now is a syscall-class cost when
// polled per candidate move). A zero deadline never expires. An
// optional cancellation channel (withCancel) is polled at the same
// cadence, so a canceled solve is abandoned within one interval.
type deadlinePoller struct {
	deadline time.Time
	done     <-chan struct{}
	interval int
	count    int
	expired  bool
}

func newDeadlinePoller(deadline time.Time, interval int) *deadlinePoller {
	if interval <= 0 {
		interval = 64
	}
	return &deadlinePoller{deadline: deadline, interval: interval}
}

// withCancel attaches a cancellation channel (typically Options.done());
// nil is accepted and never fires.
func (d *deadlinePoller) withCancel(done <-chan struct{}) *deadlinePoller {
	d.done = done
	return d
}

func (d *deadlinePoller) Expired() bool {
	if d.expired {
		return true
	}
	if d.deadline.IsZero() && d.done == nil {
		return false
	}
	d.count++
	if d.count%d.interval != 0 {
		return false
	}
	select {
	case <-d.done:
		d.expired = true
		return true
	default:
	}
	if !d.deadline.IsZero() && time.Now().After(d.deadline) {
		d.expired = true
	}
	return d.expired
}

// warmStart materializes a feasible warm seed into a plan (fresh stage
// packing and routes on topo) for Greedy's warm path.
func warmStart(g *tdg.Graph, topo *network.Topology, opts Options) (*Plan, bool) {
	assign, ok := warmSeed(g, topo, opts)
	if !ok {
		return nil, false
	}
	plan, err := materializeAssignment(g, topo, assign, opts.resourceModel())
	if err != nil {
		return nil, false
	}
	return plan, true
}
