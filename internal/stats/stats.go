// Package stats provides the small aggregation helpers the experiment
// harness uses: means, standard deviations, percentiles, and multi-run
// averaging (the paper reports averages over 100 runs).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation (n-1), or 0 when fewer
// than two samples exist.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. It fails on empty input or an
// out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %g out of range", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the usual aggregate statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P99    float64
}

// Summarize computes a Summary; an empty input yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	p50, _ := Percentile(xs, 50)
	p99, _ := Percentile(xs, 99)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Stddev: Stddev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P50:    p50,
		P99:    p99,
	}
}

// Repeat runs fn count times (run index passed in) and collects its
// float64 results; the first error aborts.
func Repeat(count int, fn func(run int) (float64, error)) ([]float64, error) {
	if count <= 0 {
		return nil, fmt.Errorf("stats: non-positive run count %d", count)
	}
	out := make([]float64, 0, count)
	for i := 0; i < count; i++ {
		v, err := fn(i)
		if err != nil {
			return nil, fmt.Errorf("stats: run %d: %w", i, err)
		}
		out = append(out, v)
	}
	return out, nil
}
