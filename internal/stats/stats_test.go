package stats

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negatives", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almost(got, tt.want) {
				t.Errorf("Mean = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev(nil); got != 0 {
		t.Errorf("Stddev(nil) = %g", got)
	}
	if got := Stddev([]float64{7}); got != 0 {
		t.Errorf("Stddev(single) = %g", got)
	}
	// Known: {2,4,4,4,5,5,7,9} has sample stddev ~2.138.
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("Stddev = %g, want ~2.138", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tt := range []struct {
		p    float64
		want float64
	}{{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {90, 4.6}} {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, tt.want) {
			t.Errorf("P%g = %g, want %g", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile accepted")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("negative percentile accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("percentile > 100 accepted")
	}
	one, err := Percentile([]float64{42}, 99)
	if err != nil || one != 42 {
		t.Errorf("single-sample percentile = %g, %v", one, err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max not zero")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.P50, 3) || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty Summary = %+v", empty)
	}
}

func TestRepeat(t *testing.T) {
	xs, err := Repeat(4, func(run int) (float64, error) { return float64(run), nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 4 || xs[3] != 3 {
		t.Errorf("Repeat = %v", xs)
	}
	sentinel := errors.New("boom")
	if _, err := Repeat(3, func(run int) (float64, error) {
		if run == 1 {
			return 0, sentinel
		}
		return 0, nil
	}); !errors.Is(err, sentinel) {
		t.Errorf("Repeat error = %v, want wrapped sentinel", err)
	}
	if _, err := Repeat(0, func(int) (float64, error) { return 0, nil }); err == nil {
		t.Error("zero count accepted")
	}
}

// Property: the percentile function is monotone in p and bounded by
// min/max.
func TestPercentileMonotone(t *testing.T) {
	prop := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, err1 := Percentile(raw, pa)
		vb, err2 := Percentile(raw, pb)
		if err1 != nil || err2 != nil {
			return false
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		return va <= vb+1e-9 && va >= sorted[0]-1e-9 && vb <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
