// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus micro-benchmarks of the load-bearing components.
// One benchmark per artifact:
//
//	Table I    -> BenchmarkTableIMetadataCatalog
//	Table III  -> BenchmarkTableIIITopologies
//	Figure 2   -> BenchmarkFig2OverheadImpact
//	Figure 5   -> BenchmarkExp1Testbed
//	Figure 6   -> BenchmarkExp2Overhead
//	Figure 7   -> BenchmarkExp3ExecTime
//	Figure 8   -> BenchmarkExp4EndToEnd
//	Figure 9   -> BenchmarkExp5Scalability
//	Exp#6      -> BenchmarkExp6Resources
//	Exp#7      -> BenchmarkExp7Replan
//
// The experiment benchmarks run the heuristic comparison lineup (the
// genuinely ILP-backed frameworks are exercised by cmd/hermes-bench,
// where multi-minute runtimes are expected); each reports the headline
// metric of its figure as a custom unit so `go test -bench` output
// documents the reproduced numbers.
package hermes_test

import (
	"fmt"
	"testing"
	"time"

	hermes "github.com/hermes-net/hermes"
	"github.com/hermes-net/hermes/internal/experiments"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/workload"
)

// benchConfig keeps the in-tree benchmarks laptop-sized. Workers is
// pinned above GOMAXPROCS so the experiment sweeps overlap their
// deadline-capped solver cells even on single-core runners; the rows
// are identical either way.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.IncludeILPFrameworks = false
	cfg.SolverDeadline = time.Second
	cfg.Workers = 8
	return cfg
}

// BenchmarkTableIMetadataCatalog regenerates Table I: the metadata
// catalog with its per-switch sizes.
func BenchmarkTableIMetadataCatalog(b *testing.B) {
	b.ReportAllocs()
	var total int
	for i := 0; i < b.N; i++ {
		cat := fields.Catalog()
		total = 0
		for _, name := range []string{
			fields.MetaSwitchID, fields.MetaQueueLen,
			fields.MetaTimestamp, fields.MetaCounterIndex,
		} {
			f, ok := cat.Get(name)
			if !ok {
				b.Fatalf("catalog missing %s", name)
			}
			total += f.Bytes()
		}
	}
	if total != 26 { // 4 + 6 + 12 + 4
		b.Fatalf("Table I sizes sum to %d, want 26", total)
	}
	b.ReportMetric(float64(total), "tableI-bytes")
}

// BenchmarkTableIIITopologies regenerates the ten WAN topologies of
// Table III.
func BenchmarkTableIIITopologies(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for t := 1; t <= network.NumTableIII(); t++ {
			tp, err := network.TableIII(t, network.TofinoSpec())
			if err != nil {
				b.Fatal(err)
			}
			if err := tp.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig2OverheadImpact regenerates Figure 2's series.
func BenchmarkFig2OverheadImpact(b *testing.B) {
	b.ReportAllocs()
	var worst float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range pts {
			if p.FCTIncrease > worst {
				worst = p.FCTIncrease
			}
		}
	}
	b.ReportMetric(worst*100, "worst-fct-increase-%")
}

// BenchmarkExp1Testbed regenerates Figure 5: the testbed comparison.
func BenchmarkExp1Testbed(b *testing.B) {
	b.ReportAllocs()
	var gap int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Exp1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		gap = overheadGap(rows[len(rows)-1].Results)
	}
	b.ReportMetric(float64(gap), "testbed-overhead-reduction-B")
}

// BenchmarkExp2Overhead regenerates Figure 6 on the first Table III
// topology (the full ten-topology sweep lives in cmd/hermes-bench).
func BenchmarkExp2Overhead(b *testing.B) {
	b.ReportAllocs()
	var gap int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Exp2(benchConfig(), 50)
		if err != nil {
			b.Fatal(err)
		}
		gap = overheadGap(rows[0].Results)
	}
	b.ReportMetric(float64(gap), "sim-overhead-reduction-B")
}

// BenchmarkExp3ExecTime regenerates Figure 7's solver-time comparison
// on one simulated instance: the Hermes heuristic itself is the unit
// under measurement.
func BenchmarkExp3ExecTime(b *testing.B) {
	b.ReportAllocs()
	progs, err := workload.EvaluationPrograms(50, 1)
	if err != nil {
		b.Fatal(err)
	}
	merged, err := hermes.Analyze(progs, hermes.AnalyzeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	topo, err := network.TableIII(10, network.TofinoSpec())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (placement.Greedy{}).Solve(merged, topo, placement.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp4EndToEnd regenerates Figure 8: the end-to-end penalty of
// each framework's overhead at 1024-byte packets.
func BenchmarkExp4EndToEnd(b *testing.B) {
	b.ReportAllocs()
	flow := hermes.DefaultFlow(1024)
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, overhead := range []int{0, 43, 65, 124, 136} { // measured Exp#2 headers
			imp, err := flow.ImpactOf(overhead)
			if err != nil {
				b.Fatal(err)
			}
			if imp.FCTIncrease > worst {
				worst = imp.FCTIncrease
			}
		}
	}
	b.ReportMetric(worst*100, "worst-baseline-fct-%")
}

// BenchmarkExp5Scalability regenerates Figure 9's 10..50-program sweep
// on topology 10.
func BenchmarkExp5Scalability(b *testing.B) {
	b.ReportAllocs()
	var gap int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Exp5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		gap = overheadGap(rows[len(rows)-1].Results)
	}
	b.ReportMetric(float64(gap), "50prog-overhead-reduction-B")
}

// BenchmarkExp6Resources regenerates the resource-consumption study.
func BenchmarkExp6Resources(b *testing.B) {
	b.ReportAllocs()
	var extra float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Exp6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		extra = res.HermesExtra
	}
	b.ReportMetric(extra, "hermes-extra-stage-units")
}

// BenchmarkExp7Replan regenerates the churn study: incremental
// replanning after a single-switch drain, reporting the 50-program
// speedup of the delta repair over the from-scratch solve.
func BenchmarkExp7Replan(b *testing.B) {
	b.ReportAllocs()
	var speedup float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Exp7(benchConfig(), 50)
		if err != nil {
			b.Fatal(err)
		}
		speedup = pts[len(pts)-1].Speedup
	}
	b.ReportMetric(speedup, "50prog-replan-speedup-x")
}

// overheadGap returns worstBaseline - hermes header bytes.
func overheadGap(results []experiments.SolverResult) int {
	hermesBytes := 0
	worst := 0
	for _, r := range results {
		if r.Err != "" {
			continue
		}
		if r.Solver == "Hermes" {
			hermesBytes = r.HeaderBytes
			continue
		}
		if r.HeaderBytes > worst {
			worst = r.HeaderBytes
		}
	}
	return worst - hermesBytes
}

// --- micro-benchmarks of the load-bearing components ---

// BenchmarkAnalyzer measures Algorithm 1 on the 50-program workload.
func BenchmarkAnalyzer(b *testing.B) {
	b.ReportAllocs()
	progs, err := workload.EvaluationPrograms(50, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hermes.Analyze(progs, hermes.AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedySmall measures Algorithm 2 on the testbed instance.
func BenchmarkGreedySmall(b *testing.B) {
	b.ReportAllocs()
	progs := workload.RealPrograms()
	merged, err := hermes.Analyze(progs, hermes.AnalyzeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	spec := network.TestbedSpec()
	spec.StageCapacity = 0.15
	topo, err := network.Linear(3, spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (placement.Greedy{}).Solve(merged, topo, placement.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSpeedup measures the greedy solver at increasing
// worker counts on a mid-size WAN instance. Every worker count
// produces the identical plan; only wall-clock changes, so the ratio
// of the workers=1 and workers=N lines is the solver's parallel
// speedup on this machine.
func BenchmarkParallelSpeedup(b *testing.B) {
	b.ReportAllocs()
	progs, err := workload.EvaluationPrograms(30, 1)
	if err != nil {
		b.Fatal(err)
	}
	merged, err := hermes.Analyze(progs, hermes.AnalyzeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	topo, err := network.TableIII(5, network.TofinoSpec())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (placement.Greedy{}).Solve(merged, topo, placement.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactSmall measures the branch & bound on the Figure 1
// instance.
func BenchmarkExactSmall(b *testing.B) {
	b.ReportAllocs()
	progs := workload.RealPrograms()[:4]
	merged, err := hermes.Analyze(progs, hermes.AnalyzeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	spec := network.TestbedSpec()
	spec.StageCapacity = 0.15
	topo, err := network.Linear(3, spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (placement.Exact{}).Solve(merged, topo, placement.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataplaneThroughput measures packets/second through a
// three-switch deployed pipeline.
func BenchmarkDataplaneThroughput(b *testing.B) {
	b.ReportAllocs()
	progs := workload.RealPrograms()[:6]
	spec := network.TestbedSpec()
	spec.StageCapacity = 0.15
	topo, err := network.Linear(3, spec)
	if err != nil {
		b.Fatal(err)
	}
	res, err := hermes.Deploy(progsAlias(progs), topo, hermes.DeployOptions{})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := hermes.NewEngine(res.Deployment)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := &hermes.Packet{Headers: map[string]uint64{
			"ipv4.srcAddr": uint64(i % 64), "ipv4.dstAddr": uint64(i % 16),
			"tcp.srcPort": uint64(i % 512), "tcp.dstPort": 80,
			"ipv4.ttl": 64,
		}}
		if _, err := eng.Process(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func progsAlias(ps []*hermes.Program) []*hermes.Program { return ps }

// BenchmarkKShortestPaths measures Yen's algorithm on a Table III WAN.
func BenchmarkKShortestPaths(b *testing.B) {
	b.ReportAllocs()
	tp, err := network.TableIII(1, network.TofinoSpec())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tp.KShortestPaths(0, network.SwitchID(tp.NumSwitches()-1), 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeFiftyPrograms measures SPEED-style TDG merging.
func BenchmarkMergeFiftyPrograms(b *testing.B) {
	b.ReportAllocs()
	progs, err := workload.EvaluationPrograms(50, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hermes.Analyze(progs, hermes.AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
