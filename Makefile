# Pre-merge check: run `make check` before sending a change. It is the
# union of everything CI would need: vet, build, the full test suite
# under the race detector (the placement engine is concurrent — racy
# code must not land), and a one-shot smoke run of the parallel
# speedup benchmark to prove the worker plumbing still functions.

GO ?= go

.PHONY: check vet build test race bench-smoke bench

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run xxx -bench ParallelSpeedup -benchtime 1x .

# Full benchmark sweep (minutes; the Exp* benchmarks regenerate the
# paper's figures).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .
