# Pre-merge check: run `make check` before sending a change. It is the
# union of everything CI would need: formatting and static analysis
# (gofmt, go vet, the repo's own hermeslint vet pass), build, the full
# test suite under the race detector (the placement engine is
# concurrent — racy code must not land), a one-shot smoke run of
# the parallel speedup benchmark to prove the worker plumbing still
# functions, a small replan-baseline smoke run proving the
# machine-readable bench output still emits, the core kernel smoke
# gate proving the compiled scoring kernels hold their speed/alloc
# floors over the retained map references, the chaos smoke gate
# proving the fault-tolerant supervisor still recovers from an
# injected fault schedule via incremental repair with zero invariant
# violations, the shard smoke gate proving region-sharded
# placement still beats the whole-graph solver at equal workers with
# bounded A_max inflation, and the equiv smoke gate proving the
# symbolic plan-equivalence checker holds its 10 ms-per-program budget
# and allocation-free fast path against the packet-replay twin, and
# the traffic smoke gate proving weighted plans cut the hot-pair
# coordination byte-rate >=2x at <=1.2x A_max inflation while the
# batched replay engine stays >=10x faster than the per-packet
# interpreter at zero allocations per packet, and the region-replan
# smoke gate proving churn heals through the region-local incremental
# path >=10x faster than a sharded cold re-solve with bounded A_max
# and matching equivalence verdicts, and the rollout smoke gate
# proving the transactional make-before-break rollout engine survives
# faults injected at every op boundary with zero torn serving states,
# exercises both terminals (commit and rollback), and resumes every
# interrupted rollout from its journal.

GO ?= go

.PHONY: check lint vet fmt-check hermeslint build test race bench-smoke bench bench-json replan-smoke core-smoke chaos-smoke shard-smoke equiv-smoke traffic-smoke regionreplan-smoke rollout-smoke bench-core-json bench-compare bench-survive-json bench-survive-compare bench-shard-json bench-shard-compare bench-equiv-json bench-equiv-compare bench-traffic-json bench-traffic-compare bench-regionreplan-json bench-regionreplan-compare bench-rollout-json bench-rollout-compare profile

check: lint build race bench-smoke replan-smoke core-smoke chaos-smoke shard-smoke equiv-smoke traffic-smoke regionreplan-smoke rollout-smoke

# Static analysis gate: gofmt (no unformatted files), go vet, and the
# repo-specific hermeslint pass (mutex/Clone conventions around the
# concurrent path oracle). `hermes lint` on the shipped examples keeps
# the p4lite diagnostics demo honest: bad.p4 must fail, the clean
# examples must pass.
lint: fmt-check vet hermeslint
	$(GO) run ./cmd/hermes lint examples/p4src/monitor.p4 examples/p4src/router.p4
	@if $(GO) run ./cmd/hermes lint examples/p4src/bad.p4 >/dev/null 2>&1; then \
		echo "bad.p4 must fail hermes lint" >&2; exit 1; \
	else \
		echo "hermes lint rejects bad.p4 (expected)"; \
	fi

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

hermeslint:
	$(GO) run ./cmd/hermeslint .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run xxx -bench ParallelSpeedup -benchtime 1x .

# Machine-readable replan baseline (Exp#7): BENCH_replan.json records
# replan latency, moved MATs, and A_max degradation vs the cold solve,
# so regressions in the incremental path are diffable across commits.
bench-json:
	$(GO) run ./cmd/hermes-bench -exp exp7 -json BENCH_replan.json -csv results

# 10-program 1x smoke of the same path (seconds, not minutes).
replan-smoke:
	@mkdir -p results
	$(GO) run ./cmd/hermes-bench -exp exp7 -programs 10 -json results/BENCH_replan_smoke.json

# Machine-independent smoke gate over the compiled scoring kernels:
# each kernel must beat its retained map-based reference by >=5x ns/op
# and either allocate nothing or beat it >=10x allocs/op. Ratios are
# measured in-process, so the gate holds on any machine.
core-smoke:
	$(GO) run ./cmd/hermes-bench -exp core -smoke

# Survivability smoke gate (Exp#8, shortest schedule): the supervised
# deployment must recover from the single-crash event through the
# incremental repair path, replan at least once over the fault
# schedule, shed nothing permanently, and pass the full oracle stack
# (Plan.Validate, lint differential oracle, deploy.Verify) at every
# quiescent point.
chaos-smoke:
	$(GO) run ./cmd/hermes-bench -exp exp8 -smoke

# Region-sharding smoke gate (Exp#10, small sweep): the sharded solver
# must not fall back, must beat the whole-graph Greedy outright on the
# same instance at equal workers, and may inflate A_max at most 1.5x.
# Both sides run in-process, so the gate holds on any machine.
shard-smoke:
	$(GO) run ./cmd/hermes-bench -exp exp10 -smoke

# Equivalence-checker smoke gate: every fixture's symbolic check must
# come in under the 10 ms-per-program budget, the real-program fixture
# must stay on the allocation-free fast path, and the symbolic check
# must beat the packet-replay twin >=5x. Ratios are measured
# in-process, so the gate holds on any machine.
equiv-smoke:
	$(GO) run ./cmd/hermes-bench -exp equiv -smoke

# Traffic smoke gate (Exp#9): on every skewed traffic model the
# weighted solver must cut the hot-pair coordination byte-rate >=2x
# vs the structural A_max-optimal plan at <=1.2x A_max inflation, and
# the batched replay engine must process packets >=10x faster than
# the per-packet interpreter with zero steady-state allocations per
# packet. All ratios are measured in-process, so the gate holds on
# any machine.
traffic-smoke:
	$(GO) run ./cmd/hermes-bench -exp traffic -smoke

# Regenerate the committed survivability baseline (BENCH_survive.json
# is what bench-survive-compare diffs against).
bench-survive-json:
	$(GO) run ./cmd/hermes-bench -exp exp8 -json BENCH_survive.json

# Survivability regression gate: fails if the structural outcome
# drifted from the committed BENCH_survive.json — single-crash repair
# falling back to a full solve, new invariant violations, changed
# shed/restore behavior, or >10% A_max inflation drift. Wall-clock
# times are ignored (machine-dependent).
bench-survive-compare:
	$(GO) run ./cmd/hermes-bench -exp exp8 -compare BENCH_survive.json

# Regenerate the committed core kernel baseline (run on a quiet
# machine; BENCH_core.json is what bench-compare diffs against).
bench-core-json:
	$(GO) run ./cmd/hermes-bench -exp core -json BENCH_core.json

# Perf regression gate: fails if a compiled kernel regressed >10%
# ns/op against the committed BENCH_core.json AND its in-run
# map/compiled ratio degraded >10% (the dual condition filters out
# machine-speed skew between the baseline host and this one).
bench-compare:
	$(GO) run ./cmd/hermes-bench -exp core -compare BENCH_core.json

# Regenerate the committed sharded-placement baseline, including the
# 10k-switch / 5k-program point (minutes; run on a quiet machine).
bench-shard-json:
	$(GO) run ./cmd/hermes-bench -exp exp10 -full -json BENCH_shard.json

# Sharding regression gate: a comparison row fails only if its solve
# time regressed >10% against the committed BENCH_shard.json AND its
# in-run speedup over the whole-graph solver degraded >10% (the dual
# condition filters machine-speed skew); the sharded-only 10k row is
# held to its structural invariants instead.
bench-shard-compare:
	$(GO) run ./cmd/hermes-bench -exp exp10 -compare BENCH_shard.json

# Regenerate the committed equivalence-checker baseline (run on a
# quiet machine; BENCH_equiv.json is what bench-equiv-compare diffs
# against).
bench-equiv-json:
	$(GO) run ./cmd/hermes-bench -exp equiv -json BENCH_equiv.json

# Equivalence-checker regression gate: a fixture fails only if its
# symbolic ns/op regressed >10% against the committed BENCH_equiv.json
# AND its in-run replay/symbolic ratio degraded >10% (the dual
# condition filters machine-speed skew), or if a fixture that was
# allocation-free in the baseline now allocates.
bench-equiv-compare:
	$(GO) run ./cmd/hermes-bench -exp equiv -compare BENCH_equiv.json

# Region-replan smoke gate (Exp#11, small sweep): every cell must heal
# the busiest-switch drain through the region-local path without a
# full-solve fallback, hold A_max within 1.2x of the sharded cold
# re-solve (unless the pre-drain seed was already worse), agree with
# the full equivalence checker, and the composite:30 headline must
# heal >=10x faster than the cold re-solve. Both sides are measured
# in-process, so the gate holds on any machine.
regionreplan-smoke:
	$(GO) run ./cmd/hermes-bench -exp regionreplan -smoke

# Regenerate the committed region-replan baseline, including the
# composite:60 point. Baseline mode repeats the sweep and records the
# per-row noise envelope (slowest healing, lowest speedup) so the
# compare gate is stable at the ~2ms scale of these cells.
bench-regionreplan-json:
	$(GO) run ./cmd/hermes-bench -exp regionreplan -full -json BENCH_regionreplan.json

# Region-replan regression gate: a row fails only if its regional
# healing time regressed >10% against the committed
# BENCH_regionreplan.json AND its in-run speedup over the cold
# re-solve degraded >25% (the dual condition filters machine-speed
# skew and single-process GC jitter at millisecond scale).
bench-regionreplan-compare:
	$(GO) run ./cmd/hermes-bench -exp regionreplan -compare BENCH_regionreplan.json

# Rollout smoke gate (Exp#12, smallest substrate): a fixed old→new
# plan transition executed once per injection point, with a fault —
# targeted crash, process interrupt with journal resume, or seeded
# ambient event — landing at a rotating op boundary. Must report zero
# torn-state violations, at least one commit and one rollback, and
# every interrupted rollout resumed. Outcomes are a pure function of
# the seed, so the gate holds on any machine.
rollout-smoke:
	$(GO) run ./cmd/hermes-bench -exp rollout -smoke

# Regenerate the committed rollout fault baseline (BENCH_rollout.json
# is what bench-rollout-compare diffs against).
bench-rollout-json:
	$(GO) run ./cmd/hermes-bench -exp rollout -json BENCH_rollout.json

# Rollout regression gate: fails if the seed-determined structure
# drifted from the committed BENCH_rollout.json — changed op count,
# shifted commit/rollback/degrade partition, lost journal resumes,
# changed retry totals, or any invariant violation. Wall-clock
# latency is ignored (machine-dependent).
bench-rollout-compare:
	$(GO) run ./cmd/hermes-bench -exp rollout -compare BENCH_rollout.json

# Regenerate the committed traffic baseline (run on a quiet machine;
# BENCH_traffic.json is what bench-traffic-compare diffs against).
bench-traffic-json:
	$(GO) run ./cmd/hermes-bench -exp traffic -json BENCH_traffic.json

# Traffic regression gate: plan-quality rows are deterministic in the
# seed and fail on >10% hot-pair-cut regression (plus the absolute
# >=2x / <=1.2x acceptance bars); the machine-dependent throughput row
# fails only if batched ns/op regressed >10% against the committed
# BENCH_traffic.json AND the in-run speedup over the per-packet
# interpreter degraded >10%, or if it allocates where the baseline
# was allocation-free.
bench-traffic-compare:
	$(GO) run ./cmd/hermes-bench -exp traffic -compare BENCH_traffic.json

# CPU + heap profiles of the incremental replan path; inspect with
# `go tool pprof results/cpu.pprof` / `go tool pprof results/mem.pprof`.
profile:
	@mkdir -p results
	$(GO) run ./cmd/hermes-bench -exp exp7 -programs 20 \
		-cpuprofile results/cpu.pprof -memprofile results/mem.pprof \
		-json results/BENCH_replan_profile.json

# Full benchmark sweep (minutes; the Exp* benchmarks regenerate the
# paper's figures).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .
