// Command nfvchain offloads a chain of network functions onto
// programmable switches (paper §II-A's NFV scenario): firewall →
// NAT → load balancer → key-value cache index. Each NF passes its
// processing results to the next, so where the chain is cut determines
// the per-packet byte overhead. The example deploys the chain with
// every solver under an ε2 budget, validates the winning plan, and
// streams traffic through it.
package main

import (
	"fmt"
	"os"

	hermes "github.com/hermes-net/hermes"
)

func run() error {
	chain := nfChain()
	progs := []*hermes.Program{chain}

	// Six modest switches: the chain cannot fit on one.
	spec := hermes.TestbedSpec()
	spec.Stages = 3
	spec.StageCapacity = 0.25
	topo, err := hermes.LinearTopology(6, spec)
	if err != nil {
		return err
	}

	fmt.Println("=== NFV chain offload ===")
	fmt.Println("firewall -(1B verdict)-> nat -(6B binding)-> lb -(2B bucket)-> kvcache")
	fmt.Println()

	for _, solver := range append([]hermes.Solver{hermes.GreedySolver, hermes.ExactSolver}, hermes.Baselines()...) {
		res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{
			Solver:   solver,
			Epsilon2: 4, // SLA: at most four switches in the chain
		})
		if err != nil {
			fmt.Printf("%-8s failed: %v\n", solver.Name(), err)
			continue
		}
		fmt.Printf("%-8s header=%2dB  switches=%d  t_e2e=%v\n",
			solver.Name(), res.Deployment.MaxHeaderBytes(), res.Plan.QOcc(), res.Plan.TE2E())
	}

	// Validate and exercise the Hermes plan.
	res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{Epsilon2: 4})
	if err != nil {
		return err
	}
	var pkts []*hermes.Packet
	for i := 0; i < 300; i++ {
		pkts = append(pkts, &hermes.Packet{Headers: map[string]uint64{
			"ipv4.srcAddr": uint64(0x0A000000 + i%32),
			"ipv4.dstAddr": uint64(0x0B000000 + i%8),
			"tcp.srcPort":  uint64(1024 + i%512),
			"tcp.dstPort":  80,
		}})
	}
	maxHdr, err := hermes.VerifyEquivalence(res.Deployment, pkts)
	if err != nil {
		return err
	}
	order, err := res.Plan.SwitchOrder()
	if err != nil {
		return err
	}
	fmt.Printf("\nHermes chain: packets visit switches %v, carrying at most %d coordination bytes\n",
		order, maxHdr)
	fmt.Println("distributed NF chain matches single-box execution over", len(pkts), "packets")
	return nil
}

func nfChain() *hermes.Program {
	verdict := hermes.MetadataField("meta.fw_verdict", 8)  // 1 B
	natAddr := hermes.MetadataField("meta.nat_addr", 32)   // 4 B
	natPort := hermes.MetadataField("meta.nat_port", 16)   // 2 B
	bucket := hermes.MetadataField("meta.lb_bucket", 16)   // 2 B
	cacheIdx := hermes.MetadataField("meta.cache_idx", 32) // 4 B

	src := hermes.HeaderField("ipv4.srcAddr", 32)
	dst := hermes.HeaderField("ipv4.dstAddr", 32)
	sport := hermes.HeaderField("tcp.srcPort", 16)
	dport := hermes.HeaderField("tcp.dstPort", 16)

	return hermes.NewProgram("nfchain").
		Table("firewall", 4096).
		Key(src, hermes.MatchTernary).
		Key(dport, hermes.MatchRange).
		ActionDef("permit", hermes.SetOp(verdict, 1)).
		ActionDef("deny", hermes.SetOp(verdict, 0)).
		Default("permit").
		Table("nat", 8192).
		Key(verdict, hermes.MatchExact).
		Key(src, hermes.MatchExact).
		ActionDef("translate",
			hermes.SetOp(natAddr, 0x0C000001),
			hermes.HashOp(natPort, src, sport)).
		Default("translate").
		Table("lb", 2048).
		Key(natAddr, hermes.MatchExact).
		ActionDef("pick", hermes.HashOp(bucket, natAddr, natPort, dst)).
		Default("pick").
		Table("kvcache", 16384).
		Key(bucket, hermes.MatchExact).
		ActionDef("index", hermes.HashOp(cacheIdx, bucket, dst)).
		Default("index").
		MustBuild()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nfvchain:", err)
		os.Exit(1)
	}
}
