// Command quickstart deploys a small measurement pipeline on a
// three-switch linear testbed — the paper's Figure 1 scenario — and
// compares Hermes' per-packet byte overhead against the byte-oblivious
// comparison frameworks.
package main

import (
	"fmt"
	"os"

	hermes "github.com/hermes-net/hermes"
)

func run() error {
	// A heavy-hitter pipeline shaped like the paper's Figure 1:
	//   hash  --2B idx-->  count  --8B cnt+ema-->  flag
	// Splitting hash|count costs 2 bytes per packet; splitting
	// count|flag costs 8. A byte-aware planner must keep count and
	// flag together.
	idx := hermes.MetadataField("meta.idx", 16) // 2 B
	cnt := hermes.MetadataField("meta.cnt", 32) // 4 B
	ema := hermes.MetadataField("meta.ema", 32) // 4 B
	heavy := hermes.MetadataField("meta.heavy", 8)
	src := hermes.HeaderField("ipv4.srcAddr", 32)
	dst := hermes.HeaderField("ipv4.dstAddr", 32)

	prog, err := hermes.NewProgram("hh").
		Table("hash", 1).
		ActionDef("mix", hermes.HashOp(idx, src, dst)).
		Default("mix").
		Table("count", 4096).
		Key(idx, hermes.MatchExact).
		ActionDef("bump", hermes.CountOp(cnt, idx), hermes.AddOp(ema, cnt, 0)).
		Default("bump").
		Table("flag", 8).
		Key(cnt, hermes.MatchRange).
		ActionDef("mark", hermes.SetOp(heavy, 1)).
		ActionDef("clear", hermes.SetOp(heavy, 0)).
		Default("clear").
		Build()
	if err != nil {
		return err
	}
	// The paper's running example: each switch tolerates two MATs.
	for _, m := range prog.MATs {
		m.FixedRequirement = 0.25
	}
	spec := hermes.TestbedSpec()
	spec.Stages = 2
	spec.StageCapacity = 0.25
	topo, err := hermes.LinearTopology(3, spec)
	if err != nil {
		return err
	}

	progs := []*hermes.Program{prog}

	fmt.Println("=== Hermes quickstart: Figure 1 in code ===")
	fmt.Println("pipeline: hash -(2B)-> count -(8B)-> flag; two MATs per switch")
	fmt.Println()
	for _, solver := range append([]hermes.Solver{hermes.GreedySolver, hermes.ExactSolver}, hermes.Baselines()...) {
		res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{Solver: solver})
		if err != nil {
			fmt.Printf("%-8s failed: %v\n", solver.Name(), err)
			continue
		}
		plan := res.Plan
		fmt.Printf("%-8s A_max=%2dB  total-cross=%2dB  switches=%d\n",
			solver.Name(), plan.AMax(), plan.TotalCrossBytes(), plan.QOcc())
	}

	// Drive packets through the Hermes deployment and check it matches
	// single-switch execution.
	res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{})
	if err != nil {
		return err
	}
	var pkts []*hermes.Packet
	for i := 0; i < 100; i++ {
		pkts = append(pkts, &hermes.Packet{Headers: map[string]uint64{
			"ipv4.srcAddr": uint64(i % 4),
			"ipv4.dstAddr": uint64(i % 2),
		}})
	}
	maxHdr, err := hermes.VerifyEquivalence(res.Deployment, pkts)
	if err != nil {
		return err
	}
	fmt.Printf("\ndistributed execution == single-box execution over %d packets\n", len(pkts))
	fmt.Printf("largest coordination header on the wire: %d bytes (plan A_max: %d bytes)\n",
		maxHdr, res.Plan.AMax())

	// What does that overhead cost end to end?
	flow := hermes.DefaultFlow(512)
	impact, err := flow.ImpactOf(res.Plan.AMax())
	if err != nil {
		return err
	}
	fmt.Printf("end-to-end impact at 512B packets: FCT %+.1f%%, goodput %+.1f%%\n",
		impact.FCTIncrease*100, -impact.GoodputDecrease*100)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}
