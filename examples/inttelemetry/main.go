// Command inttelemetry deploys an in-band network telemetry pipeline
// (paper §II-A, Table I): the INT source stamps switch ID, timestamp
// and queue length — 22 bytes of Table I metadata — and downstream
// stages consume them. It contrasts a placement that splits the INT
// pipeline (every packet carries all 22 bytes between switches) with
// Hermes' placement, and quantifies the end-to-end difference for the
// paper's three packet sizes.
package main

import (
	"fmt"
	"os"

	hermes "github.com/hermes-net/hermes"
)

func run() error {
	// The INT program from the workload catalog plus an L3 routing
	// program competing for switch resources.
	progs := []*hermes.Program{intProgram(), routingProgram()}

	spec := hermes.TestbedSpec()
	spec.Stages = 4
	spec.StageCapacity = 0.12
	topo, err := hermes.LinearTopology(5, spec) // a 5-hop DCN path
	if err != nil {
		return err
	}

	fmt.Println("=== In-band network telemetry (Table I metadata) ===")
	type outcome struct {
		name  string
		bytes int
	}
	var outcomes []outcome
	for _, solver := range append([]hermes.Solver{hermes.GreedySolver}, hermes.Baselines()...) {
		res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{Solver: solver})
		if err != nil {
			fmt.Printf("%-8s failed: %v\n", solver.Name(), err)
			continue
		}
		hdr := res.Deployment.MaxHeaderBytes()
		fmt.Printf("%-8s coordination header=%2dB  switches=%d\n",
			solver.Name(), hdr, res.Plan.QOcc())
		outcomes = append(outcomes, outcome{solver.Name(), hdr})
	}
	if len(outcomes) == 0 {
		return fmt.Errorf("no solver produced a plan")
	}

	// End-to-end cost of each outcome across the paper's packet sizes.
	fmt.Println("\nFCT penalty by packet size (Figure 2 mechanism):")
	fmt.Printf("%-8s", "solver")
	for _, size := range []int{512, 1024, 1500} {
		fmt.Printf("  %6dB", size)
	}
	fmt.Println()
	for _, oc := range outcomes {
		fmt.Printf("%-8s", oc.name)
		for _, size := range []int{512, 1024, 1500} {
			imp, err := hermes.DefaultFlow(size).ImpactOf(oc.bytes)
			if err != nil {
				return err
			}
			fmt.Printf("  %+5.1f%%", imp.FCTIncrease*100)
		}
		fmt.Println()
	}
	return nil
}

func intProgram() *hermes.Program {
	swid := hermes.MetadataField("meta.switch_id", 32) // 4 B (Table I)
	ts := hermes.MetadataField("meta.timestamp", 96)   // 12 B (Table I)
	qlen := hermes.MetadataField("meta.queue_len", 48) // 6 B (Table I)
	depth := hermes.MetadataField("meta.int_depth", 8)
	report := hermes.MetadataField("meta.int_report", 32)

	return hermes.NewProgram("int").
		Table("source", 64).
		Key(hermes.HeaderField("udp.dstPort", 16), hermes.MatchExact).
		ActionDef("stamp",
			hermes.SetOp(swid, 1),
			hermes.SetOp(ts, 0),
			hermes.SetOp(qlen, 0)).
		Default("stamp").
		Table("transit", 64).
		Key(swid, hermes.MatchExact).
		ActionDef("push", hermes.AddOp(depth, swid, 1)).
		Default("push").
		Table("sink", 64).
		Key(depth, hermes.MatchRange).
		ActionDef("export", hermes.CopyOp(report, ts)).
		Default("export").
		MustBuild()
}

func routingProgram() *hermes.Program {
	nh := hermes.MetadataField("meta.next_hop", 32)
	egress := hermes.MetadataField("meta.egress_port", 16)
	return hermes.NewProgram("l3").
		Table("lpm", 8192).
		Key(hermes.HeaderField("ipv4.dstAddr", 32), hermes.MatchLPM).
		ActionDef("set", hermes.SetOp(nh, 0)).
		Default("set").
		Table("nexthop", 512).
		Key(nh, hermes.MatchExact).
		ActionDef("fwd", hermes.SetOp(egress, 0)).
		Default("fwd").
		MustBuild()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inttelemetry:", err)
		os.Exit(1)
	}
}
