// Command p4frontend demonstrates the p4lite textual frontend: two
// programs written in the library's small P4-inspired language are
// compiled, deployed with Hermes, and exercised with traffic.
package main

import (
	"fmt"
	"os"

	hermes "github.com/hermes-net/hermes"
)

const monitorSrc = `
// Flow monitoring: hash the flow key, count it, flag elephants.
program monitor;

metadata idx : 32;
metadata cnt : 32;
metadata heavy : 8;

table flow_hash {
  capacity 1;
  action mix { hash idx <- ipv4.srcAddr, ipv4.dstAddr, tcp.srcPort, tcp.dstPort; }
  default mix;
}

table flow_count {
  key idx : exact;
  capacity 8192;
  action bump { count cnt <- idx; }
  default bump;
}

table elephant {
  key cnt : range;
  capacity 8;
  action mark  { set heavy <- 1; }
  action clear { set heavy <- 0; }
  default clear;
}
`

const routerSrc = `
// L3 routing: LPM lookup, next-hop resolution, TTL decrement.
program router;

metadata nhop : 32;

table lpm {
  key ipv4.dstAddr : lpm;
  capacity 16384;
  action set_nhop { set nhop <- 1; dec ipv4.ttl; }
  default set_nhop;
}

table next_hop {
  key nhop : exact;
  capacity 1024;
  action fwd { set meta.egress_port <- 1; }
  default fwd;
}
`

func run() error {
	monitor, err := hermes.ParseP4Lite(monitorSrc)
	if err != nil {
		return fmt.Errorf("compiling monitor: %w", err)
	}
	router, err := hermes.ParseP4Lite(routerSrc)
	if err != nil {
		return fmt.Errorf("compiling router: %w", err)
	}
	fmt.Printf("compiled %q (%d tables) and %q (%d tables) from p4lite source\n",
		monitor.Name, len(monitor.MATs), router.Name, len(router.MATs))

	spec := hermes.TestbedSpec()
	spec.Stages = 3
	spec.StageCapacity = 0.2
	topo, err := hermes.LinearTopology(4, spec)
	if err != nil {
		return err
	}

	res, err := hermes.Deploy([]*hermes.Program{monitor, router}, topo, hermes.DeployOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("deployment: %s\n", res.Plan.Summary())
	order, err := res.Plan.SwitchOrder()
	if err != nil {
		return err
	}
	fmt.Printf("packets traverse switches %v carrying at most %d coordination bytes\n",
		order, res.Deployment.MaxHeaderBytes())

	var pkts []*hermes.Packet
	for i := 0; i < 400; i++ {
		pkts = append(pkts, &hermes.Packet{Headers: map[string]uint64{
			"ipv4.srcAddr": uint64(0x0A00_0000 + i%7),
			"ipv4.dstAddr": uint64(0x0B00_0000 + i%3),
			"tcp.srcPort":  uint64(1024 + i%11),
			"tcp.dstPort":  443,
			"ipv4.ttl":     64,
		}})
	}
	maxHdr, err := hermes.VerifyEquivalence(res.Deployment, pkts)
	if err != nil {
		return err
	}
	fmt.Printf("verified %d packets against single-box execution; on-wire header %dB\n",
		len(pkts), maxHdr)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "p4frontend:", err)
		os.Exit(1)
	}
}
