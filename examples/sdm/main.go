// Command sdm reproduces the software-defined measurement scenario of
// the paper's Exp#6: ten sketch programs deployed concurrently. It
// shows (1) SPEED-style merging eliminating the redundant shared hash
// stages, (2) Hermes placing the merged TDG with minimal per-packet
// overhead, and (3) the resource accounting that backs the paper's
// claim that Hermes adds no switch resources beyond the workload
// itself.
package main

import (
	"fmt"
	"os"

	hermes "github.com/hermes-net/hermes"
)

func run() error {
	sketches, err := hermes.Sketches(10, 42)
	if err != nil {
		return err
	}
	totalMATs := 0
	for _, s := range sketches {
		totalMATs += len(s.MATs)
	}

	// Analysis with merging (Hermes / SPEED behavior).
	merged, err := hermes.Analyze(sketches, hermes.AnalyzeOptions{})
	if err != nil {
		return err
	}
	fmt.Println("=== Software-defined measurement (Exp#6 scenario) ===")
	fmt.Printf("ten sketches declare %d MATs; the merged TDG has %d (redundant hash stages unified)\n",
		totalMATs, merged.NumNodes())

	// A testbed tight enough that the sketch set spans switches.
	spec := hermes.TestbedSpec()
	spec.StageCapacity = 0.3
	topo, err := hermes.LinearTopology(3, spec)
	if err != nil {
		return err
	}

	res, err := hermes.Deploy(sketches, topo, hermes.DeployOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nHermes deployment: %s\n", res.Plan.Summary())
	for _, id := range res.Plan.UsedSwitches() {
		cfg := res.Deployment.Configs[id]
		fmt.Printf("  switch %d hosts %d MATs\n", id, len(cfg.MATNames()))
	}
	fmt.Printf("largest coordination header: %d bytes\n", res.Deployment.MaxHeaderBytes())

	// Resource accounting: the deployment must consume exactly the
	// merged workload's requirement — coordination adds nothing.
	deployed := 0.0
	for _, sp := range res.Plan.Assignments {
		deployed += sp.Total()
	}
	var rm hermes.ResourceModel
	rm = defaultModel()
	inherent := res.TDG.TotalRequirement(rm)
	fmt.Printf("\nresources: workload requires %.2f stage-units, deployment consumes %.2f (extra: %+.4f)\n",
		inherent, deployed, deployed-inherent)

	// Run traffic through the deployed sketches and verify equivalence
	// with a single big switch.
	var pkts []*hermes.Packet
	for i := 0; i < 500; i++ {
		pkts = append(pkts, &hermes.Packet{Headers: map[string]uint64{
			"ipv4.srcAddr": uint64(i % 16),
			"ipv4.dstAddr": uint64(i % 5),
		}})
	}
	maxHdr, err := hermes.VerifyEquivalence(res.Deployment, pkts)
	if err != nil {
		return err
	}
	fmt.Printf("\n%d packets processed: distributed sketch counts match the single-box reference\n", len(pkts))
	fmt.Printf("measured on-wire coordination header: %d bytes (<= A_max %d)\n", maxHdr, res.Plan.AMax())
	return nil
}

// defaultModel returns the library's default resource model.
func defaultModel() hermes.ResourceModel {
	return hermes.DefaultResourceModel()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sdm:", err)
		os.Exit(1)
	}
}
