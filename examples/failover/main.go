// Command failover walks the operational lifecycle of a Hermes
// deployment: deploy a monitoring workload, install rules at runtime,
// drain a switch for maintenance, replan around it, and verify that the
// re-deployed network still processes traffic exactly like a single
// big switch — with the coordination overhead re-minimized for the
// reduced substrate.
package main

import (
	"fmt"
	"os"

	hermes "github.com/hermes-net/hermes"
)

func run() error {
	progs := []*hermes.Program{}
	sketches, err := hermes.Sketches(6, 11)
	if err != nil {
		return err
	}
	progs = append(progs, sketches...)

	spec := hermes.TestbedSpec()
	spec.StageCapacity = 0.25
	topo, err := hermes.LinearTopology(4, spec)
	if err != nil {
		return err
	}

	fmt.Println("=== Deployment lifecycle ===")
	res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("initial: %s\n", res.Plan.Summary())

	// Runtime rule installation through the controller.
	ctl, err := hermes.NewController(res.Deployment)
	if err != nil {
		return err
	}
	mat := res.TDG.NodeNames()[1] // a counting row
	sw, err := ctl.HostingSwitch(mat)
	if err != nil {
		return err
	}
	fmt.Printf("runtime: %q is served by switch %d; per-switch load:\n", mat, sw)
	for _, l := range ctl.Loads() {
		fmt.Printf("  switch %d: %d MATs, %d rules\n", l.Switch, l.MATs, l.Rules)
	}

	// Route optimization: spread coordination bytes across paths.
	if maxLink, err := hermes.OptimizeRoutes(res.Plan, hermes.RouteOptions{K: 3}); err == nil {
		fmt.Printf("routes: busiest link carries %dB after k-shortest-path spreading\n", maxLink)
	}

	// Baseline traffic run.
	pkts, _, err := hermes.TrafficSpec{Packets: 500, Flows: 32, Seed: 2}.Generate()
	if err != nil {
		return err
	}
	if _, err := hermes.VerifyEquivalence(res.Deployment, pkts); err != nil {
		return err
	}
	fmt.Printf("traffic: %d packets verified against single-box execution\n\n", len(pkts))

	// Drain the busiest switch and heal the live deployment in one
	// step: incremental delta repair (full-solve fallback under
	// ReplanAuto), recompile, re-verify — with the churn telemetry.
	used := res.Plan.UsedSwitches()
	drained := used[0]
	fmt.Printf("=== Draining switch %d ===\n", drained)
	dep2, rep, err := hermes.Redeploy(res.Deployment, hermes.GreedySolver,
		hermes.ReplanOptions{Mode: hermes.ReplanAuto}, hermes.AnalyzeOptions{}, drained)
	if err != nil {
		return err
	}
	path := "full solve"
	if rep.UsedRepair {
		path = fmt.Sprintf("delta repair, %d dirty MATs", rep.DirtyMATs)
	}
	fmt.Printf("replanned: %s\n", dep2.Plan.Summary())
	fmt.Printf("migration: %d of %d MATs moved via %s in %v\n",
		rep.MovedMATs, res.TDG.NumNodes(), path, rep.TotalTime)

	// Re-verify traffic on the reduced substrate.
	if _, err := hermes.VerifyEquivalence(dep2, pkts); err != nil {
		return err
	}
	fmt.Printf("traffic: re-verified %d packets on the drained topology (header %dB)\n",
		len(pkts), dep2.MaxHeaderBytes())
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}
