// L3 routing: LPM lookup, next-hop resolution, TTL decrement.
program router;

metadata nhop : 32;

table lpm {
  key ipv4.dstAddr : lpm;
  capacity 16384;
  action set_nhop { set nhop <- 1; dec ipv4.ttl; }
  default set_nhop;
}

table next_hop {
  key nhop : exact;
  capacity 1024;
  action fwd { set meta.egress_port <- 1; }
  default fwd;
}
