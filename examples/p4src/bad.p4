// A deliberately faulty program exercising the `hermes lint` rule
// families. Every table below trips at least one diagnostic:
//
//   HL001  mangle/lonely are isolated (no dependency, no control path)
//   HL002  spare/mark can never run (not default, no rule selects them)
//   HL003  elephant_bad matches cnt before any MAT writes it
//   HL004  unused_fld is declared but never referenced
//   HL005  blowup writes 80B of metadata, over the 64B header budget
//   HL009  scratch and big0..big4 are written but never read
//   HL010  mangle has no key yet two actions: only the default runs
//   HL011  elephant_bad installs no rules and no default action
program bad;

metadata cnt : 32;
metadata unused_fld : 16;
metadata scratch : 32;
metadata big0 : 128;
metadata big1 : 128;
metadata big2 : 128;
metadata big3 : 128;
metadata big4 : 128;

table mangle {
  capacity 1;
  action mix   { set scratch <- 1; }
  action spare { set scratch <- 2; }
  default mix;
}

table elephant_bad {
  key cnt : range;
  capacity 8;
  action mark { set big0 <- 1; }
}

table blowup {
  capacity 1;
  action fill { set big0 <- 1; set big1 <- 2; set big2 <- 3; set big3 <- 4; set big4 <- 5; }
  default fill;
}

table lonely {
  key ipv4.ttl : exact;
  capacity 4;
  action keep { dec ipv4.ttl; }
  default keep;
}
