// Flow monitoring: hash the flow key, count it, flag elephants.
// `hermes lint` reports only informational notes on it (the heavy
// flag is the program's externally-consumed result).
program monitor;

metadata idx : 32;
metadata cnt : 32;
metadata heavy : 8;

table flow_hash {
  capacity 1;
  action mix { hash idx <- ipv4.srcAddr, ipv4.dstAddr, tcp.srcPort, tcp.dstPort; }
  default mix;
}

table flow_count {
  key idx : exact;
  capacity 8192;
  action bump { count cnt <- idx; }
  default bump;
}

table elephant {
  key cnt : range;
  capacity 8;
  action mark  { set heavy <- 1; }
  action clear { set heavy <- 0; }
  default clear;
}

control {
  flow_hash -> flow_count;
  flow_count -> elephant;
}
