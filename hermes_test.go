package hermes_test

import (
	"testing"
	"time"

	hermes "github.com/hermes-net/hermes"
)

// facadeWorkload builds a small two-program workload through the public
// API only.
func facadeWorkload(t testing.TB) []*hermes.Program {
	t.Helper()
	idx := hermes.MetadataField("meta.idx", 32)
	cnt := hermes.MetadataField("meta.cnt", 32)
	src := hermes.HeaderField("ipv4.srcAddr", 32)

	monitor, err := hermes.NewProgram("monitor").
		Table("hash", 1).
		ActionDef("mix", hermes.HashOp(idx, src)).
		Default("mix").
		Table("count", 2048).
		Key(idx, hermes.MatchExact).
		ActionDef("bump", hermes.CountOp(cnt, idx)).
		Default("bump").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	routerSrc := `
program router;
metadata nhop : 32;
table lpm {
  key ipv4.dstAddr : lpm;
  capacity 4096;
  action set_nhop { set nhop <- 1; dec ipv4.ttl; }
  default set_nhop;
}
table next_hop {
  key nhop : exact;
  capacity 256;
  action fwd { set meta.egress_port <- 1; }
  default fwd;
}
`
	router, err := hermes.ParseP4Lite(routerSrc)
	if err != nil {
		t.Fatal(err)
	}
	return []*hermes.Program{monitor, router}
}

func facadeTopo(t testing.TB) *hermes.Topology {
	t.Helper()
	spec := hermes.TestbedSpec()
	spec.Stages = 3
	spec.StageCapacity = 0.1
	topo, err := hermes.LinearTopology(4, spec)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestDeployEndToEnd(t *testing.T) {
	progs := facadeWorkload(t)
	topo := facadeTopo(t)
	res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TDG == nil || res.Plan == nil || res.Deployment == nil {
		t.Fatal("result incomplete")
	}
	if res.Plan.QOcc() < 2 {
		t.Fatalf("workload should span switches, got %d", res.Plan.QOcc())
	}
	if err := res.Plan.Validate(hermes.DefaultResourceModel(), 0, 0); err != nil {
		t.Fatal(err)
	}

	// Exercise the deployment with generated traffic.
	pkts, _, err := hermes.TrafficSpec{Packets: 300, Flows: 16, Seed: 5}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	maxHdr, err := hermes.VerifyEquivalence(res.Deployment, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if maxHdr > res.Plan.AMax() {
		t.Errorf("wire header %d exceeds A_max %d", maxHdr, res.Plan.AMax())
	}
}

func TestDeployWithAllSolvers(t *testing.T) {
	progs := facadeWorkload(t)
	topo := facadeTopo(t)
	solvers := append([]hermes.Solver{hermes.GreedySolver, hermes.ExactSolver, hermes.ILPSolver},
		hermes.Baselines()...)
	for _, s := range solvers {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{
				Solver:         s,
				SolverDeadline: 5 * time.Second,
			})
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if err := res.Plan.Validate(hermes.DefaultResourceModel(), 0, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRuntimeControllerThroughFacade(t *testing.T) {
	progs := facadeWorkload(t)
	topo := facadeTopo(t)
	res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := hermes.NewController(res.Deployment)
	if err != nil {
		t.Fatal(err)
	}
	rule := hermes.Rule{
		Priority: 1,
		Matches:  map[string]hermes.Pattern{"meta.idx": {Value: 3}},
		Action:   "bump",
	}
	if err := ctl.InstallRule("monitor/count", rule); err != nil {
		t.Fatal(err)
	}
	n, err := ctl.RuleCount("monitor/count")
	if err != nil || n != 1 {
		t.Fatalf("RuleCount = %d, %v", n, err)
	}
}

func TestReplanThroughFacade(t *testing.T) {
	progs := facadeWorkload(t)
	topo := facadeTopo(t)
	res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{})
	if err != nil {
		t.Fatal(err)
	}
	used := res.Plan.UsedSwitches()
	newPlan, err := hermes.Replan(res.Plan, hermes.GreedySolver, hermes.SolveOptions{}, used[0])
	if err != nil {
		t.Fatal(err)
	}
	moved, err := hermes.PlanDiff(res.Plan, newPlan)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Error("drain moved nothing")
	}
	for name := range newPlan.Assignments {
		if sw, _ := newPlan.SwitchOf(name); sw == used[0] {
			t.Errorf("MAT %q still on drained switch", name)
		}
	}
}

func TestOptimizeRoutesThroughFacade(t *testing.T) {
	progs := facadeWorkload(t)
	topo := facadeTopo(t)
	res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{})
	if err != nil {
		t.Fatal(err)
	}
	maxLink, err := hermes.OptimizeRoutes(res.Plan, hermes.RouteOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if maxLink < 0 {
		t.Errorf("max link = %d", maxLink)
	}
	if err := res.Plan.Validate(hermes.DefaultResourceModel(), 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonConstraintsThroughFacade(t *testing.T) {
	progs := facadeWorkload(t)
	topo := facadeTopo(t)
	if _, err := hermes.Deploy(progs, topo, hermes.DeployOptions{Epsilon2: 1}); err == nil {
		t.Error("ε2=1 accepted for a multi-switch workload")
	}
	res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{Epsilon2: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.QOcc() > 3 {
		t.Errorf("QOcc = %d exceeds ε2=3", res.Plan.QOcc())
	}
}

func TestDeployWithLintGate(t *testing.T) {
	// DeployOptions.Lint threads the diagnostics engine through both
	// the analyzer (merged TDG rules) and the solver (plan invariant
	// rules); a clean workload must pass end to end.
	progs := facadeWorkload(t)
	topo := facadeTopo(t)
	res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{Lint: true})
	if err != nil {
		t.Fatalf("lint-gated deploy of a clean workload must succeed: %v", err)
	}
	if res.Plan == nil || res.Deployment == nil {
		t.Fatal("result incomplete")
	}
}

func TestWorkloadHelpersThroughFacade(t *testing.T) {
	if len(hermes.RealPrograms()) != 10 {
		t.Error("RealPrograms != 10")
	}
	syn, err := hermes.SyntheticPrograms(3, 1)
	if err != nil || len(syn) != 3 {
		t.Fatalf("SyntheticPrograms: %d, %v", len(syn), err)
	}
	sk, err := hermes.Sketches(4, 1)
	if err != nil || len(sk) != 4 {
		t.Fatalf("Sketches: %d, %v", len(sk), err)
	}
	if _, err := hermes.TableIIITopology(3, hermes.TofinoSpec()); err != nil {
		t.Fatal(err)
	}
	flow := hermes.DefaultFlow(1024)
	imp, err := flow.ImpactOf(48)
	if err != nil || imp.FCTIncrease <= 0 {
		t.Fatalf("ImpactOf: %+v, %v", imp, err)
	}
}
