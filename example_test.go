package hermes_test

import (
	"fmt"

	hermes "github.com/hermes-net/hermes"
)

// ExampleDeploy shows the full pipeline on the paper's Figure 1
// workload: three dependent MATs on a three-switch testbed where each
// switch holds two MATs. Hermes keeps the expensive dependency
// co-located, paying only the cheap one across switches.
func ExampleDeploy() {
	idx := hermes.MetadataField("meta.idx", 8)  // 1 B, cheap to ship
	cnt := hermes.MetadataField("meta.cnt", 32) // 4 B, expensive
	src := hermes.HeaderField("ipv4.srcAddr", 32)

	prog, err := hermes.NewProgram("fig1").
		Table("a", 1).
		ActionDef("hash", hermes.HashOp(idx, src)).
		Default("hash").
		Table("b", 1024).
		Key(idx, hermes.MatchExact).
		ActionDef("count", hermes.CountOp(cnt, idx)).
		Default("count").
		Table("c", 8).
		Key(cnt, hermes.MatchRange).
		ActionDef("mark", hermes.SetOp(hermes.MetadataField("meta.h", 8), 1)).
		Default("mark").
		Build()
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	for _, m := range prog.MATs {
		m.FixedRequirement = 0.5 // two MATs per switch, as in Figure 1
	}
	spec := hermes.TestbedSpec()
	spec.Stages = 2
	spec.StageCapacity = 0.5
	topo, err := hermes.LinearTopology(3, spec)
	if err != nil {
		fmt.Println("topology:", err)
		return
	}
	res, err := hermes.Deploy([]*hermes.Program{prog}, topo, hermes.DeployOptions{})
	if err != nil {
		fmt.Println("deploy:", err)
		return
	}
	fmt.Printf("switches=%d overhead=%dB\n", res.Plan.QOcc(), res.Deployment.MaxHeaderBytes())
	// Output: switches=2 overhead=1B
}

// ExampleParseP4Lite compiles a textual program and reports its shape.
func ExampleParseP4Lite() {
	prog, err := hermes.ParseP4Lite(`
program demo;
metadata nhop : 32;
table lpm {
  key ipv4.dstAddr : lpm;
  capacity 1024;
  action set_nhop { set nhop <- 1; dec ipv4.ttl; }
  default set_nhop;
}
table fwd {
  key nhop : exact;
  action out { set meta.egress_port <- 3; }
  default out;
}
`)
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	fmt.Printf("%s: %d tables\n", prog.Name, len(prog.MATs))
	// Output: demo: 2 tables
}

// ExampleAnalyze inspects the merged TDG of two sketches: their
// identical hash stages unify, and the analyzer prices each dependency
// in bytes.
func ExampleAnalyze() {
	sketches, err := hermes.Sketches(2, 7)
	if err != nil {
		fmt.Println("workload:", err)
		return
	}
	separate := 0
	for _, s := range sketches {
		separate += len(s.MATs)
	}
	g, err := hermes.Analyze(sketches, hermes.AnalyzeOptions{})
	if err != nil {
		fmt.Println("analyze:", err)
		return
	}
	fmt.Printf("declared=%d merged=%d\n", separate, g.NumNodes())
	// Output: declared=6 merged=5
}

// ExampleFlowConfig_ImpactOf reproduces one Figure 2 point: the end-to-end
// cost of 48 piggybacked bytes on 1024-byte packets.
func ExampleFlowConfig_ImpactOf() {
	flow := hermes.DefaultFlow(1024)
	imp, err := flow.ImpactOf(48)
	if err != nil {
		fmt.Println("impact:", err)
		return
	}
	fmt.Printf("FCT +%.1f%% goodput -%.1f%%\n", imp.FCTIncrease*100, imp.GoodputDecrease*100)
	// Output: FCT +4.2% goodput -4.0%
}
