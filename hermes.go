// Package hermes is the public API of the Hermes network-wide data
// plane program deployment framework (Chen et al., ICDCS 2022).
//
// Hermes deploys a set of data plane programs — collections of
// match-action tables (MATs) — onto a network of programmable
// switches while minimizing the per-packet byte overhead of
// inter-switch coordination: the metadata that must be piggybacked on
// every packet when dependent MATs land on different switches.
//
// The typical flow is:
//
//	progs := []*hermes.Program{buildMyProgram()}
//	topo := buildMyTopology()
//	result, err := hermes.Deploy(progs, topo, hermes.DeployOptions{})
//	// result.Plan places every MAT; result.Deployment carries the
//	// per-switch configs and coordination headers.
//
// The heavy lifting lives in the internal packages; this package
// re-exports the stable surface: program construction (Program, MAT,
// Builder), topology modeling (Topology, Switch), analysis (Analyze),
// the solvers (Greedy heuristic, exact branch & bound, MILP encoding),
// the deployment backend, and the packet-level/flow-level simulators.
package hermes

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/baseline"
	"github.com/hermes-net/hermes/internal/dataplane"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/deploy/rollout"
	"github.com/hermes-net/hermes/internal/e2esim"
	"github.com/hermes-net/hermes/internal/equiv"
	"github.com/hermes-net/hermes/internal/fields"
	_ "github.com/hermes-net/hermes/internal/lint" // registers the lint hooks behind DeployOptions.Lint
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/p4lite"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/placement/shard"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/supervisor"
	"github.com/hermes-net/hermes/internal/tdg"
	"github.com/hermes-net/hermes/internal/workload"
)

// Program model.
type (
	// Program is a data plane program: an ordered set of MATs plus
	// control-flow edges.
	Program = program.Program
	// MAT is a match-action table.
	MAT = program.MAT
	// Builder assembles programs fluently.
	Builder = program.Builder
	// Field is a packet header or metadata field.
	Field = fields.Field
	// ResourceModel converts MAT properties into stage fractions.
	ResourceModel = program.ResourceModel
)

// DefaultResourceModel returns the resource model used across the
// library when none is supplied.
func DefaultResourceModel() ResourceModel { return program.DefaultResourceModel }

// NewProgram starts a program builder.
func NewProgram(name string) *Builder { return program.NewBuilder(name) }

// Match types for MAT keys.
const (
	MatchExact   = program.MatchExact
	MatchLPM     = program.MatchLPM
	MatchTernary = program.MatchTernary
	MatchRange   = program.MatchRange
)

// Op is a primitive action operation.
type Op = program.Op

// Rule is one installed MAT entry.
type Rule = program.Rule

// Pattern matches a field value within a rule.
type Pattern = program.Pattern

// SetOp writes an immediate (or rule parameter) into dst.
func SetOp(dst Field, imm uint64) Op { return program.SetOp(dst, imm) }

// CopyOp copies src into dst.
func CopyOp(dst, src Field) Op { return program.CopyOp(dst, src) }

// AddOp adds src plus imm into dst.
func AddOp(dst, src Field, imm uint64) Op { return program.AddOp(dst, src, imm) }

// HashOp writes a hash of srcs into dst.
func HashOp(dst Field, srcs ...Field) Op { return program.HashOp(dst, srcs...) }

// CountOp increments a counter indexed by idx, storing the count in dst.
func CountOp(dst, idx Field) Op { return program.CountOp(dst, idx) }

// DecOp decrements dst by imm (1 when imm is 0).
func DecOp(dst Field, imm uint64) Op { return program.DecOp(dst, imm) }

// HeaderField constructs a packet header field.
func HeaderField(name string, bits int) Field { return fields.Header(name, bits) }

// MetadataField constructs a pipeline metadata field.
func MetadataField(name string, bits int) Field { return fields.Metadata(name, bits) }

// Network model.
type (
	// Topology is the substrate network.
	Topology = network.Topology
	// Switch is one network node.
	Switch = network.Switch
	// SwitchID identifies a switch.
	SwitchID = network.SwitchID
	// SwitchSpec configures topology generators.
	SwitchSpec = network.SwitchSpec
)

// NewTopology creates an empty topology.
func NewTopology(name string) *Topology { return network.NewTopology(name) }

// LinearTopology builds an n-switch linear chain (the paper's testbed
// shape).
func LinearTopology(n int, spec SwitchSpec) (*Topology, error) {
	return network.Linear(n, spec)
}

// TofinoSpec returns the paper's simulation switch settings.
func TofinoSpec() SwitchSpec { return network.TofinoSpec() }

// TestbedSpec returns the paper's testbed switch settings.
func TestbedSpec() SwitchSpec { return network.TestbedSpec() }

// TableIIITopology returns the i-th (1-based) evaluation WAN of the
// paper's Table III.
func TableIIITopology(i int, spec SwitchSpec) (*Topology, error) {
	return network.TableIII(i, spec)
}

// Traffic model (DESIGN.md §13): seeded demand matrices that turn the
// structural A objective into a byte-rate objective.
type (
	// TrafficMatrix is a set of (src, dst, rate) demands over a
	// topology's switch ID space.
	TrafficMatrix = network.TrafficMatrix
	// TrafficDemand is one end-to-end demand entry.
	TrafficDemand = network.Demand
	// TrafficObjective selects the weighted aggregate the solvers
	// minimize when a matrix is supplied.
	TrafficObjective = placement.TrafficObjective
)

// Weighted objectives: total coordination byte-rate (sum) or the
// hottest pair's byte-rate (max).
const (
	TrafficWeightedSum = placement.TrafficWeightedSum
	TrafficWeightedMax = placement.TrafficWeightedMax
)

// TrafficModels lists the built-in traffic model names (uniform,
// gravity, hotspot, elephants).
func TrafficModels() []string { return network.TrafficModels() }

// GenerateTraffic builds a named seeded traffic model over a topology.
func GenerateTraffic(t *Topology, model string, seed int64) (*TrafficMatrix, error) {
	return network.GenerateTraffic(t, model, seed)
}

// ParseTraffic reads the Format text form of a matrix back, validated
// against t — the `hermes -traffic @file` path.
func ParseTraffic(text string, t *Topology) (*TrafficMatrix, error) {
	return network.ParseTraffic(text, t)
}

// ParseTrafficSpec resolves the "<model>[:<seed>]" CLI spelling.
func ParseTrafficSpec(spec string, t *Topology) (*TrafficMatrix, error) {
	return network.ParseTrafficSpec(spec, t)
}

// Analysis and deployment.
type (
	// TDG is a table dependency graph.
	TDG = tdg.Graph
	// Plan is a complete deployment decision.
	Plan = placement.Plan
	// Deployment is a compiled plan: per-switch configs plus
	// coordination headers.
	Deployment = deploy.Deployment
	// Solver deploys a TDG onto a network.
	Solver = placement.Solver
	// SolveOptions carries the ε-constraint bounds (ε1 latency, ε2
	// switch count) and solver knobs.
	SolveOptions = placement.Options
	// AnalyzeOptions tunes program analysis.
	AnalyzeOptions = analyzer.Options
)

// Solvers.
var (
	// GreedySolver is the paper's Algorithm 2 heuristic.
	GreedySolver Solver = placement.Greedy{}
	// ExactSolver is the branch & bound "Optimal" reference.
	ExactSolver Solver = placement.Exact{}
	// ILPSolver is the literal MILP encoding of problem P#1.
	ILPSolver Solver = placement.ILP{}
)

// ShardedSolver is the region-sharded Greedy for very large
// topologies: it partitions the network into SolveOptions.Shards
// regions, solves them concurrently, and reconciles region boundaries
// with bounded exchange rounds. On small instances (or Shards <= 1) it
// falls back to whole-graph Greedy.
type ShardedSolver = shard.ShardedGreedy

// ShardStats is the sharded solver's run telemetry (region count,
// exchange rounds, accepted migrations, A_max before/after).
type ShardStats = shard.Stats

// TopologyPartition is a disjoint cover of a topology's switches by
// connected regions: the sharded solver's decomposition and the
// regional replan's locality structure (DESIGN.md §14).
type TopologyPartition = network.Partition

// PartitionOptions configures PartitionTopologyWith (region count,
// seed, balance tolerance, refinement and min-cut swap passes).
type PartitionOptions = network.PartitionOptions

// PartitionTopology partitions a topology into k capacity-balanced
// connected regions, deterministic in seed — the sharded solver's
// first phase, exposed for offline partition inspection (see
// topogen -partition).
func PartitionTopology(t *Topology, k int, seed int64) (*TopologyPartition, error) {
	return network.PartitionRegions(t, k, seed)
}

// PartitionTopologyWith is PartitionTopology with the full option set,
// including the Kernighan–Lin-style min-cut boundary-swap refinement
// (PartitionOptions.MinCutPasses; see topogen -partition -refine).
func PartitionTopologyWith(t *Topology, opts PartitionOptions) (*TopologyPartition, error) {
	return network.PartitionTopology(t, opts)
}

// ParsePartition reads a partition's Format text form back, validated
// against t — the `-partition @file` path.
func ParsePartition(text string, t *Topology) (*TopologyPartition, error) {
	return network.ParsePartition(text, t)
}

// CompositeWANTopology builds a large WAN stitched from Table III-sized
// regions — the evaluation substrate for the sharded solver.
func CompositeWANTopology(regions int, spec SwitchSpec, seed int64) (*Topology, error) {
	return network.CompositeWAN(regions, spec, seed)
}

// FatTreeTopology builds a k-ary fat-tree (k even): the standard DCN
// shape, 1.25*k^2 switches.
func FatTreeTopology(k int, spec SwitchSpec, seed int64) (*Topology, error) {
	return network.FatTree(k, spec, seed)
}

// Baselines returns the eight comparison frameworks of the paper's
// evaluation (MS, Sonata, SPEED, MTP, FP, P4All, FFL, FFLS).
func Baselines() []Solver { return baseline.All() }

// ParseP4Lite compiles p4lite source text — the library's small
// P4-inspired table language (see internal/p4lite for the grammar) —
// into a Program.
func ParseP4Lite(src string) (*Program, error) { return p4lite.Parse(src) }

// Analyze converts programs into an annotated merged TDG (the paper's
// program analyzer, Algorithm 1).
func Analyze(progs []*Program, opts AnalyzeOptions) (*TDG, error) {
	return analyzer.Analyze(progs, opts)
}

// DeployOptions configures Deploy.
type DeployOptions struct {
	// Solver picks the placement algorithm; nil means GreedySolver.
	Solver Solver
	// Epsilon1 bounds the end-to-end coordination latency (0 = unbounded).
	Epsilon1 time.Duration
	// Epsilon2 bounds the number of occupied switches (0 = unbounded).
	Epsilon2 int
	// SolverDeadline caps exact/ILP solver runtime (0 = none); such
	// solvers return their best incumbent at the deadline.
	SolverDeadline time.Duration
	// Workers bounds the solver's internal parallelism (candidate
	// scoring, branch search). Zero or negative means GOMAXPROCS; every
	// worker count produces the same plan.
	Workers int
	// Shards requests region-sharded placement: when > 1 and Solver is
	// nil, Deploy uses ShardedSolver instead of GreedySolver, splitting
	// the topology into this many regions solved concurrently and
	// reconciled at the boundaries. Explicit Solvers receive the value
	// through SolveOptions.Shards and honor it if they have a sharded
	// mode. Zero means whole-graph solving.
	Shards int
	// Overlap sets how many region cuts a sharded boundary-exchange
	// migration may cross per round (DESIGN.md §14): ≤1 keeps the
	// classic pair-local exchange; 2 admits the 2-hop overlapping
	// region neighborhoods. Ignored unless sharded placement runs.
	Overlap int
	// Partition, when non-nil, hands sharded placement a precomputed
	// region partition (over this topology, with Shards regions)
	// instead of re-partitioning — operators that replan against a
	// standing partition keep solve-time and replan-time regions
	// aligned.
	Partition *TopologyPartition
	// Traffic switches the solvers to the traffic-weighted objective
	// min Σ w(u,v)·A(u,v) (DESIGN.md §13): coordination bytes are scored
	// by the packet rate that actually carries them. Nil keeps the
	// paper's structural A_max objective.
	Traffic *TrafficMatrix
	// TrafficObjective picks the weighted aggregate (sum or max) when
	// Traffic is set; the zero value is TrafficWeightedSum.
	TrafficObjective TrafficObjective
	// AMaxSlack caps how far a weighted solve may inflate the
	// structural A_max above the structural optimum (e.g. 1.2 = 20%);
	// zero means the default bound. Ignored when Traffic is nil.
	AMaxSlack float64
	// Analyze tunes the program analysis step.
	Analyze AnalyzeOptions
	// Lint runs the static diagnostics engine (internal/lint) over the
	// merged TDG after analysis and over the solver's plan before
	// compilation, failing Deploy on error-severity findings. Importing
	// package hermes registers the lint hooks.
	Lint bool
	// Equiv runs the symbolic plan-equivalence checker (internal/equiv)
	// twice: over the solver's plan before compilation (via the
	// placement hook) and over the compiled deployment's actual
	// coordination headers after Verify. Deploy fails on any
	// error-severity HE finding — the distributed pipeline is then not
	// provably equivalent to the single-box reference.
	Equiv bool
	// Ctx cancels the placement solve when done; nil means not
	// cancelable.
	Ctx context.Context
	// Prior, when non-nil, is the deployment currently serving traffic.
	// Deploy then adopts the new deployment via the transactional
	// make-before-break rollout engine instead of assuming a cold
	// start: new configs are staged next to the old epoch, program
	// groups flip atomically, and the old epoch is retired only after
	// every group committed. Result.Rollout carries the staged report;
	// a mid-rollout failure restores Prior and Deploy returns an error
	// wrapping ErrRolledBack.
	Prior *Deployment
	// PriorEpoch is Prior's epoch token (0 means 1). Ignored when
	// Prior is nil.
	PriorEpoch uint64
	// RolloutRetry bounds per-op attempts during the rollout; the zero
	// policy gets the rollout defaults (3 attempts, 2ms backoff).
	// Ignored when Prior is nil.
	RolloutRetry RetryPolicy
}

// Result is the outcome of Deploy.
type Result struct {
	// TDG is the analyzed merged table dependency graph.
	TDG *TDG
	// Plan maps every MAT onto switch stages and picks routes.
	Plan *Plan
	// Deployment is the compiled per-switch configuration.
	Deployment *Deployment
	// Rollout reports the transactional adoption when
	// DeployOptions.Prior was set; nil otherwise.
	Rollout *RolloutReport
}

// Deploy runs the full Hermes pipeline: analyze → place → compile.
func Deploy(progs []*Program, topo *Topology, opts DeployOptions) (*Result, error) {
	aopts := opts.Analyze
	aopts.Lint = aopts.Lint || opts.Lint
	g, err := analyzer.Analyze(progs, aopts)
	if err != nil {
		return nil, fmt.Errorf("hermes: %w", err)
	}
	solver := opts.Solver
	if solver == nil {
		if opts.Shards > 1 {
			solver = shard.ShardedGreedy{Overlap: opts.Overlap, Partition: opts.Partition}
		} else {
			solver = GreedySolver
		}
	}
	popts := placement.Options{
		Epsilon1:         opts.Epsilon1,
		Epsilon2:         opts.Epsilon2,
		Workers:          opts.Workers,
		Lint:             opts.Lint,
		Equiv:            opts.Equiv,
		Ctx:              opts.Ctx,
		Shards:           opts.Shards,
		Traffic:          opts.Traffic,
		TrafficObjective: opts.TrafficObjective,
		AMaxSlack:        opts.AMaxSlack,
	}
	if opts.SolverDeadline > 0 {
		popts.Deadline = time.Now().Add(opts.SolverDeadline)
	}
	plan, err := solver.Solve(g, topo, popts)
	if err != nil {
		return nil, fmt.Errorf("hermes: %w", err)
	}
	dep, err := deploy.Compile(plan, aopts)
	if err != nil {
		return nil, fmt.Errorf("hermes: %w", err)
	}
	if err := dep.Verify(); err != nil {
		return nil, fmt.Errorf("hermes: %w", err)
	}
	if opts.Equiv {
		if err := equiv.CheckDeployment(g, dep); err != nil {
			return nil, fmt.Errorf("hermes: %w", err)
		}
	}
	res := &Result{TDG: g, Plan: plan, Deployment: dep}
	if opts.Prior != nil {
		r, err := rollout.New(opts.Prior, dep, RolloutOptions{
			Topo:      topo,
			Ctx:       opts.Ctx,
			Retry:     opts.RolloutRetry,
			FromEpoch: opts.PriorEpoch,
		})
		if err != nil {
			return nil, fmt.Errorf("hermes: %w", err)
		}
		rep, err := r.Execute()
		res.Rollout = rep
		if err != nil {
			return res, fmt.Errorf("hermes: %w", err)
		}
	}
	return res, nil
}

// Simulation.
type (
	// Packet is a simulated packet (header fields only; metadata lives
	// inside switch pipelines).
	Packet = dataplane.Packet
	// Engine executes a deployment packet by packet.
	Engine = dataplane.Engine
	// FlowConfig models a flow for FCT/goodput analysis.
	FlowConfig = e2esim.Config
	// FlowImpact is the normalized FCT/goodput penalty of an overhead.
	FlowImpact = e2esim.Impact
)

// NewEngine prepares a packet-level engine for a deployment.
func NewEngine(dep *Deployment) (*Engine, error) { return dataplane.NewEngine(dep) }

// High-throughput replay (DESIGN.md §13.2).
type (
	// BatchPipeline executes a deployment over flat packet batches with
	// precompiled per-switch programs — the ≥10× faster sibling of
	// Engine for throughput experiments.
	BatchPipeline = dataplane.Pipeline
	// Batch is a column-major block of packets moving through a
	// BatchPipeline.
	Batch = dataplane.Batch
	// ReplayStats aggregates a replay run (packets/sec, coordination
	// bytes, per-pair byte counts).
	ReplayStats = dataplane.ReplayStats
	// TrafficReplayResult is ReplayTraffic's verdict: replay stats plus
	// the weighted byte-rate aggregates and an FCT proxy.
	TrafficReplayResult = dataplane.TrafficResult
)

// NewBatchPipeline compiles a deployment for batched execution.
// extraHeaders names header fields the workload sets beyond the
// deployment's own; batchSize <= 0 picks the default.
func NewBatchPipeline(dep *Deployment, extraHeaders []string, batchSize int) (*BatchPipeline, error) {
	return dataplane.NewPipeline(dep, extraHeaders, batchSize)
}

// ReplayTraffic drives a traffic matrix through a deployment on the
// batched pipeline, apportioning the packet budget over demands by
// rate, and reports goodput plus the measured weighted coordination
// byte-rates.
func ReplayTraffic(dep *Deployment, tm *TrafficMatrix, packets, batchSize, workers int) (*TrafficReplayResult, error) {
	return dataplane.ReplayTraffic(dep, tm, packets, batchSize, workers)
}

// VerifyEquivalence checks that the distributed deployment processes
// the packet stream identically to a single unconstrained switch, and
// returns the largest coordination header observed.
func VerifyEquivalence(dep *Deployment, packets []*Packet) (int, error) {
	return dataplane.EquivalentRuns(dep, packets)
}

// EquivReport is the symbolic equivalence checker's full diagnostic
// verdict: HE findings, per-program verdicts, and a replay-confirmed
// counterexample packet on failure.
type EquivReport = equiv.Report

// CheckEquivalence statically proves the deployment's distributed
// pipeline equivalent to its single-box reference (nil error = proven)
// without replaying a single packet. It is the machine-proven superset
// of VerifyEquivalence: a symbolic pass implies the replay passes for
// every packet, not just a sampled stream.
func CheckEquivalence(dep *Deployment) error {
	return equiv.CheckDeployment(nil, dep)
}

// DiagnoseEquivalence builds the full equivalence report for a
// deployment, including non-gating findings (over-carried metadata,
// benign shuffles) and a concrete counterexample when broken.
func DiagnoseEquivalence(dep *Deployment) (*EquivReport, error) {
	return equiv.Diagnose(nil, dep)
}

// EquivRechecker proves successive plans over one reference TDG,
// re-proving after a replan only the field-closed components that
// actually moved (the incremental equivalence gate; see
// internal/equiv).
type EquivRechecker = equiv.Rechecker

// RecheckStats reports which path one recheck took (full or
// incremental) and how much of the pipeline it re-proved.
type RecheckStats = equiv.RecheckStats

// NewEquivRechecker builds an incremental equivalence checker for a
// reference TDG.
func NewEquivRechecker(g *TDG) (*EquivRechecker, error) { return equiv.NewRechecker(g) }

// DefaultFlow returns the paper's DCN flow configuration for a packet
// size.
func DefaultFlow(packetBytes int) FlowConfig { return e2esim.DefaultDCN(packetBytes) }

// Runtime operations.

// Controller installs and removes rules on a live deployment.
type Controller = deploy.Controller

// NewController wraps a deployment for runtime rule management.
func NewController(dep *Deployment) (*Controller, error) {
	return deploy.NewController(dep)
}

// Replan recomputes a deployment after draining programmable switches
// (maintenance or partial failure); the drained switches keep
// forwarding but host no MATs. By default it repairs the old plan
// incrementally and only falls back to a full solve when the repair
// violates the ε bounds or the quality ratio; use ReplanWithOptions to
// pin the mode or inspect the churn telemetry.
func Replan(old *Plan, solver Solver, opts SolveOptions, drained ...SwitchID) (*Plan, error) {
	return placement.Replan(old, solver, opts, drained...)
}

// Replan strategies.
type (
	// ReplanMode selects incremental repair, full re-solve, or auto.
	ReplanMode = placement.ReplanMode
	// ReplanOptions extends SolveOptions with churn-path knobs.
	ReplanOptions = placement.ReplanOptions
	// ReplanReport is the churn telemetry of one replan.
	ReplanReport = placement.ReplanReport
)

// Replan modes.
const (
	// ReplanAuto repairs incrementally, falling back to a full solve.
	ReplanAuto = placement.ReplanAuto
	// ReplanIncremental repairs incrementally or fails.
	ReplanIncremental = placement.ReplanIncremental
	// ReplanFull always re-solves from scratch.
	ReplanFull = placement.ReplanFull
)

// ParseReplanMode converts the CLI spelling of a replan mode.
func ParseReplanMode(s string) (ReplanMode, error) { return placement.ParseReplanMode(s) }

// ReplanWithOptions is Replan with an explicit mode and churn
// telemetry.
func ReplanWithOptions(old *Plan, solver Solver, opts ReplanOptions, drained ...SwitchID) (*Plan, *ReplanReport, error) {
	return placement.ReplanWithOptions(old, solver, opts, drained...)
}

// Redeploy replans a live deployment around drained switches and
// recompiles the result: replan → compile → verify. aopts must be the
// analyzer options the original deployment was compiled with.
func Redeploy(dep *Deployment, solver Solver, opts ReplanOptions, aopts AnalyzeOptions, drained ...SwitchID) (*Deployment, *ReplanReport, error) {
	return deploy.Redeploy(dep, solver, opts, aopts, drained...)
}

// PlanDiff reports how many MATs changed hosting switch between two
// plans over the same TDG — the migration cost of a replan.
func PlanDiff(a, b *Plan) (int, error) { return placement.Diff(a, b) }

// RouteOptions configure OptimizeRoutes.
type RouteOptions = placement.RouteOptions

// OptimizeRoutes re-chooses the plan's inter-switch paths among each
// pair's k shortest (the y(u,v,p) decision variables) to minimize the
// busiest link's piggyback load; it returns that maximum per-link byte
// count.
func OptimizeRoutes(p *Plan, opts RouteOptions) (int, error) {
	return placement.OptimizeRoutes(p, opts)
}

// TrafficSpec generates Zipf-distributed packet workloads with exact
// ground-truth flow counts.
type TrafficSpec = dataplane.TrafficSpec

// DecodePlan rehydrates a JSON-serialized plan (Plan.EncodeJSON)
// against the TDG and topology it was computed for, validating it under
// the default resource model.
func DecodePlan(data []byte, g *TDG, topo *Topology) (*Plan, error) {
	return placement.DecodePlan(data, g, topo, program.DefaultResourceModel)
}

// Fault tolerance.

type (
	// FaultEvent is one scheduled fault-layer mutation (switch or link
	// down/up).
	FaultEvent = network.FaultEvent
	// FaultSchedule is a tick-ordered fault sequence.
	FaultSchedule = network.Schedule
	// FaultScheduleOptions parameterizes GenerateFaultSchedule.
	FaultScheduleOptions = network.ScheduleOptions
	// Supervisor keeps a deployment consistent with the live topology's
	// fault state: health monitoring with K-of-N confirmation,
	// incremental replanning on confirmed failures, graceful program
	// shedding when no feasible plan exists, and restoration on heal.
	Supervisor = supervisor.Supervisor
	// SupervisorOptions configures a Supervisor.
	SupervisorOptions = supervisor.Options
	// MonitorOptions tunes the health monitor (confirmation windows,
	// probe timeout, backoff).
	MonitorOptions = supervisor.MonitorOptions
	// DegradationReport records every shed/restore decision.
	DegradationReport = supervisor.DegradationReport
	// SupervisorStats are the supervisor's lifetime counters.
	SupervisorStats = supervisor.Stats
	// SupervisorPollResult describes what one supervision tick did.
	SupervisorPollResult = supervisor.PollResult
	// RetryPolicy configures the controller's rule-operation retries
	// against transiently down switches.
	RetryPolicy = deploy.RetryPolicy
)

// ErrSwitchDown marks rule operations that failed because the hosting
// switch is down; it is the only error the controller retries.
var ErrSwitchDown = deploy.ErrSwitchDown

// Transactional rollout (make-before-break plan adoption).
type (
	// Rollout is one prepared old→new transactional transition: new
	// configs staged under a fresh epoch, per-program atomic flips,
	// journaled ops with automatic rollback to the last-good plan.
	Rollout = rollout.Rollout
	// RolloutOptions configure one rollout (live topology, retry
	// policy, fabric, resume journal, op hook).
	RolloutOptions = rollout.Options
	// RolloutReport is the staged record of one rollout execution
	// (stable JSON field names; String renders the CLI output).
	RolloutReport = rollout.Report
	// RolloutJournal is the durable op-by-op record that lets an
	// interrupted rollout resume or roll back after a crash.
	RolloutJournal = rollout.Journal
	// RolloutFabric abstracts the switch config store rollout ops are
	// applied to.
	RolloutFabric = rollout.Fabric
	// RolloutMemFabric is the in-memory fabric tracking per-switch
	// installed epochs against a live topology's fault overlay.
	RolloutMemFabric = rollout.MemFabric
	// RolloutHook observes every rollout op boundary (fault injection
	// in chaos tests, progress reporting in tools).
	RolloutHook = rollout.Hook
	// ServingView is the rollout's live program→epoch serving state.
	ServingView = rollout.ServingView
)

// ErrRolledBack marks a rollout that could not complete and restored
// the last-good plan; the wrapped cause names the op that failed.
var ErrRolledBack = rollout.ErrRolledBack

// Rollout outcomes (RolloutReport.Outcome).
const (
	RolloutCommitted   = rollout.OutcomeCommitted
	RolloutRolledBack  = rollout.OutcomeRolledBack
	RolloutInterrupted = rollout.OutcomeInterrupted
	RolloutDegraded    = rollout.OutcomeDegraded
)

// NewRollout diffs old → next and prepares (or, with opts.Journal,
// resumes) a transactional make-before-break rollout between them.
func NewRollout(old, next *Deployment, opts RolloutOptions) (*Rollout, error) {
	return rollout.New(old, next, opts)
}

// ExecuteRollout is the one-shot path: prepare and run a rollout from
// old to next over the live topology, returning the staged report.
func ExecuteRollout(old, next *Deployment, opts RolloutOptions) (*RolloutReport, error) {
	r, err := rollout.New(old, next, opts)
	if err != nil {
		return nil, err
	}
	return r.Execute()
}

// NewRolloutFabric builds an in-memory rollout fabric over topo.
func NewRolloutFabric(topo *Topology) *RolloutMemFabric {
	return rollout.NewMemFabric(topo)
}

// ParseRolloutJournal reads a journal's text form (Journal.Format)
// back for resume after an interrupted rollout.
func ParseRolloutJournal(text string) (*RolloutJournal, error) {
	return rollout.ParseJournal(text)
}

// GenerateFaultSchedule produces a deterministic fault schedule for a
// topology: crashes, link cuts, flapping, and correlated regional
// outages, with matching heals. Every prefix leaves the surviving
// subgraph connected.
func GenerateFaultSchedule(topo *Topology, opts FaultScheduleOptions) (*FaultSchedule, error) {
	return network.GenerateSchedule(topo, opts)
}

// ParseFaultSchedule reads the text schedule form (one
// `<tick> <op> <args>` event per line).
func ParseFaultSchedule(r io.Reader) (*FaultSchedule, error) {
	return network.ParseSchedule(r)
}

// NewSupervisor deploys progs on topo (progs[0] has the highest
// priority and is shed last) and wraps the deployment in a supervisor.
func NewSupervisor(progs []*Program, topo *Topology, opts SupervisorOptions) (*Supervisor, error) {
	return supervisor.New(progs, topo, opts)
}

// Workloads.

// RealPrograms returns the ten switch.p4-style evaluation programs.
func RealPrograms() []*Program { return workload.RealPrograms() }

// SyntheticPrograms generates n synthetic programs with the paper's
// published parameters, deterministic in seed.
func SyntheticPrograms(n int, seed int64) ([]*Program, error) {
	return workload.SyntheticSet(n, workload.PaperSyntheticSpec(), seed)
}

// Sketches generates the Exp#6 software-defined-measurement workload.
func Sketches(n int, seed int64) ([]*Program, error) {
	return workload.SketchSet(n, seed)
}
